// Policy building blocks: selectors ("what"), conditions, responses, rules.
//
// A Rule is one `event : response { ... }` pair from an instance
// specification. The control layer evaluates rule events and executes the
// attached responses, which act on objects chosen by Selectors.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/status.h"
#include "core/events.h"
#include "obs/metrics.h"

namespace tiera {

class TieraInstance;

// Context handed to responses when an event fires. For action events it
// names the object and (for inserts) carries the payload.
struct EventContext {
  TieraInstance* instance = nullptr;

  // Action-event fields.
  std::string object_id;
  std::shared_ptr<const Bytes> payload;  // insert payload (may be null)
  std::string action_tier;               // tier named by the action, if any

  // Set true by placement responses so PUT knows the object was stored.
  bool stored = false;
  // Tiers the object was stored into during this event (drives the second
  // matching pass for `insert.into == tierX` rules).
  std::vector<std::string> stored_tiers;
  // Incremented by any response that moved/added/removed bytes; the
  // conditional-loop executor uses it to detect progress.
  std::uint64_t mutations = 0;
  // Attribution totals the engine maintains while responses run: bytes
  // written into tiers and distinct objects mutated. The control layer
  // diffs them around each rule execution to feed that rule's
  // bytes-moved/objects-touched counters, and the instance mirrors them
  // into `tiera_instance_policy_*` so stats totals reconcile with per-tier
  // sums.
  std::uint64_t bytes_moved = 0;
  std::uint64_t objects_touched = 0;
  // The rule whose responses are currently executing (set by the control
  // layer right before the response loop). Engine ops use it to attribute
  // data-movement spend per rule in the CostMeter; 0 = no rule context
  // (e.g. the default-placement fallback).
  std::uint64_t rule_id = 0;
  std::string rule_name;
  // First error reported by a foreground placement/replication response.
  // PUT acknowledges only writes whose whole synchronous policy succeeded
  // (a write-through copy to a failed tier fails the PUT, as in Fig. 17).
  Status placement_error = Status::Ok();
};

// --- Selectors ---------------------------------------------------------------

// Describes which objects a response acts on. Mirrors the "what:" argument
// forms appearing in the paper's specs:
//   insert.object                       -> kActionObject
//   object.location == tierX [&& ...]   -> kFilter with in_tier
//   tierX.oldest / tierX.newest         -> kOldest / kNewest
//   "literal-id"                        -> kById
struct Selector {
  enum class Pick { kActionObject, kById, kOldest, kNewest, kFilter };

  Pick pick = Pick::kFilter;
  std::string id;                        // kById
  std::string tier;                      // kOldest/kNewest; kFilter location
  std::optional<bool> dirty;             // kFilter: object.dirty == ...
  std::optional<std::string> tag;        // kFilter: object.tag == ...

  static Selector action_object() {
    Selector s;
    s.pick = Pick::kActionObject;
    return s;
  }
  static Selector by_id(std::string object_id) {
    Selector s;
    s.pick = Pick::kById;
    s.id = std::move(object_id);
    return s;
  }
  static Selector oldest_in(std::string tier) {
    Selector s;
    s.pick = Pick::kOldest;
    s.tier = std::move(tier);
    return s;
  }
  static Selector newest_in(std::string tier) {
    Selector s;
    s.pick = Pick::kNewest;
    s.tier = std::move(tier);
    return s;
  }
  static Selector in_tier(std::string tier,
                          std::optional<bool> dirty = std::nullopt,
                          std::optional<std::string> tag = std::nullopt) {
    Selector s;
    s.pick = Pick::kFilter;
    s.tier = std::move(tier);
    s.dirty = dirty;
    s.tag = std::move(tag);
    return s;
  }
  static Selector all() { return Selector{}; }
  static Selector with_tag(std::string tag) {
    Selector s;
    s.tag = std::move(tag);
    return s;
  }

  // Resolve to object ids in the context of a firing event.
  std::vector<std::string> resolve(EventContext& ctx) const;
  std::string describe() const;
};

// --- Conditions --------------------------------------------------------------

// Guard for conditional responses (`if (tier1.filled) { ... }` in Fig. 5).
struct Condition {
  enum class Kind {
    kAlways,
    // Tier cannot fit the insert payload (or is at/over the fraction when no
    // payload is in context). This is what `tierX.filled` means inside an
    // insert-event response.
    kTierCannotFit,
    kTierFillAtLeast,   // fill fraction >= threshold
    kTierUsedAtLeast,   // used bytes   >= threshold
  };

  Kind kind = Kind::kAlways;
  std::string tier;
  double threshold = 1.0;

  static Condition always() { return {}; }
  static Condition tier_cannot_fit(std::string tier) {
    return {Kind::kTierCannotFit, std::move(tier), 1.0};
  }
  static Condition tier_fill_at_least(std::string tier, double fraction) {
    return {Kind::kTierFillAtLeast, std::move(tier), fraction};
  }
  static Condition tier_used_at_least(std::string tier, double bytes) {
    return {Kind::kTierUsedAtLeast, std::move(tier), bytes};
  }

  bool evaluate(const EventContext& ctx) const;
  std::string describe() const;
};

// --- Responses ---------------------------------------------------------------

class Response {
 public:
  virtual ~Response() = default;
  virtual Status execute(EventContext& ctx) = 0;
  virtual std::string describe() const = 0;
};

using ResponsePtr = std::unique_ptr<Response>;
using ResponseList = std::vector<ResponsePtr>;

// --- Rules -------------------------------------------------------------------

// Per-rule attribution, registered in the global MetricsRegistry under
// `tiera_rule_*{rule="<id>",name="<name>"}` when the control layer assigns
// the rule its id. The registry owns the series; this struct caches the
// pointers (hot path: one atomic per update) and keeps the last error text
// for the `top` view.
struct RuleStats {
  Counter* fires = nullptr;
  Counter* errors = nullptr;
  Counter* bytes_moved = nullptr;
  Counter* objects_touched = nullptr;
  LatencyHistogram* latency = nullptr;

  void record_error(std::string_view message) {
    std::lock_guard lock(mu_);
    last_error_.assign(message);
  }
  std::string last_error() const {
    std::lock_guard lock(mu_);
    return last_error_;
  }

 private:
  mutable std::mutex mu_;
  std::string last_error_;
};

struct Rule {
  std::uint64_t id = 0;  // assigned by the control layer
  std::string name;      // optional human label
  EventDef event;
  ResponseList responses;

  // Runtime state for threshold rules: armed means the threshold may fire on
  // the next crossing. (Edge-triggered semantics.)
  std::shared_ptr<std::atomic<bool>> armed =
      std::make_shared<std::atomic<bool>>(true);
  // Runtime state for timer rules: next wall-clock deadline.
  std::shared_ptr<std::atomic<std::int64_t>> next_deadline_ns =
      std::make_shared<std::atomic<std::int64_t>>(0);
  // Runtime threshold value (advances for sliding thresholds).
  std::shared_ptr<std::atomic<double>> threshold_state =
      std::make_shared<std::atomic<double>>(0);
  // Attribution series; populated by ControlLayer::add_rule.
  std::shared_ptr<RuleStats> stats;
};

}  // namespace tiera
