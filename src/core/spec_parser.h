// Instance-specification language.
//
// The paper configures instances through specification files (Figs. 3-6) but
// hand-codes the policies in its prototype, leaving "automated compilation
// of specification files" to future work. This module implements that
// compiler: it parses the paper's syntax
//
//   Tiera LowLatencyInstance(time t) {
//     % comment
//     tier1: { name: Memcached, size: 5G };
//     tier2: { name: EBS, size: 5G };
//     event(insert.into) : response {
//       insert.object.dirty = true;
//       store(what: insert.object, to: tier1);
//     }
//     event(time=t) : response {
//       copy(what: object.location == tier1 && object.dirty == true,
//            to: tier2);
//     }
//   }
//
// into a template that can be instantiated (with arguments bound to the
// declared parameters) as a running TieraInstance.
//
// Supported constructs: tier declarations; action events
// (`insert.into[ == tierX]`, `get.from[ == tierX]`, `delete.from`), timer
// events (`time=t`, `time=30s`), threshold events (`tierX.filled == 75%`,
// `tierX.used == 50M`, with optional `sliding` modifier); the `background`
// event modifier; every Table 1 response verb; `if (tierX.filled) { ... }`
// blocks; `insert.object.dirty = true;` assignments; SLO declarations
// (`slo get_p99 < 2ms window 60s burn 5m/1h;`) and SLO threshold events
// (`event(slo.get_p99 == violated)`); the `journal_batch: <size>;`
// declaration bounding the metadata journal's group-commit batches; and the
// `admission: { ... };` block configuring the overload front door
// (`admission: { tenant_rate: 500, shed_burn: 2.0, resume_hold: 2s };`).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/instance.h"
#include "core/templates.h"

namespace tiera {

// Resolves resilience knob texts (the spec fields `retries`, `deadline`,
// `breaker`, `hedge`; empty string = knob unset) into a ResiliencePolicy.
// Shared by the spec instantiator and tierad's command-line flags.
Result<ResiliencePolicy> parse_resilience_fields(const std::string& retries,
                                                 const std::string& deadline,
                                                 const std::string& breaker,
                                                 const std::string& hedge);

// The spec language's duration grammar ("30s", "2min", "500ms", "1h"; bare
// numbers are seconds), exposed for command-line flags that mirror spec
// fields (tierad --tenant-burst, the soak runner's phase lengths).
Result<Duration> parse_duration_text(std::string_view text);

class InstanceSpec {
 public:
  // Parse a specification text. Errors carry line numbers.
  static Result<InstanceSpec> parse(std::string_view text);
  static Result<InstanceSpec> parse_file(const std::string& path);

  const std::string& instance_name() const { return name_; }
  // Declared parameters, in order (e.g. {"t"} for `(time t)`).
  const std::vector<std::string>& parameters() const { return param_names_; }
  std::size_t tier_count() const { return tiers_.size(); }
  // Raw text of the `journal_batch:` declaration; empty when absent.
  const std::string& journal_batch_text() const { return journal_batch_text_; }
  std::size_t rule_count() const { return rules_.size(); }
  std::size_t slo_count() const { return slos_.size(); }

  // `admission: { ... };` — knobs for the overload front door the serving
  // layer (net/tiera_service.h) installs. The spec only carries the
  // configuration; wiring it to a server is the daemon's job.
  bool has_admission() const { return admission_.declared; }
  // Resolves the declared knob texts into an AdmissionConfig (defaults for
  // omitted fields). Fields are literals — parameters are not substituted.
  Result<AdmissionConfig> admission_config() const;

  // Build a running instance. `args` binds parameter names to literal values
  // (e.g. {{"t", "30s"}}).
  Result<InstancePtr> instantiate(
      const TemplateOptions& opts,
      const std::map<std::string, std::string>& args = {}) const;

  // Install this spec's tiers and rules onto an existing instance (dynamic
  // reconfiguration from a spec file).
  Status apply_to(TieraInstance& instance,
                  const std::map<std::string, std::string>& args = {}) const;

  // Internal representation (public for the parser/instantiator helpers).
  struct TierDecl {
    std::string label;
    std::string service;
    std::string size_text;
    // Resilience knobs (raw text; empty = knob not set):
    //   retries: 3            bounded exponential-backoff retries
    //   deadline: 50ms        per-op budget across all attempts
    //   breaker: on | <n>     circuit breaker (n = failure threshold)
    //   hedge: on | 95%       hedge GETs past this latency quantile
    std::string retries_text;
    std::string deadline_text;
    std::string breaker_text;
    std::string hedge_text;

    bool has_resilience() const {
      return !retries_text.empty() || !deadline_text.empty() ||
             !breaker_text.empty() || !hedge_text.empty();
    }
  };

  struct Call {
    std::string verb;
    std::map<std::string, std::string> args;  // raw argument text by name
    int line = 0;
  };

  struct Stmt {
    enum class Kind { kCall, kAssign, kIf };
    Kind kind = Kind::kCall;
    Call call;                    // kCall
    std::string assign_target;    // kAssign: e.g. insert.object.dirty
    std::string assign_value;     // kAssign: true/false
    std::string if_condition;     // kIf: raw condition text
    std::vector<Stmt> body;       // kIf
    int line = 0;
  };

  struct RuleDecl {
    bool background = false;
    std::string event_text;  // raw event expression
    std::vector<Stmt> stmts;
    int line = 0;
  };

  // `slo get_p99 < 2ms window 60s burn 5m/1h;` — a windowed latency (or
  // error-rate) objective. The metric may carry a tier prefix
  // (`tier2.get_p99`) to scope the objective to one tier's requests.
  struct SloDecl {
    std::string metric_text;  // e.g. get_p99, error_rate, tier2.get_p99
    std::string target_text;  // e.g. 2ms (latency) or 1% (error rate)
    std::string window_text;  // e.g. 60s; empty = default
    std::string burn_text;    // e.g. 5m/1h; empty = default
    int line = 0;
  };

  // Raw knob texts of the `admission: { ... };` block (empty = default):
  //   enabled: on|off        master switch (declared block defaults on)
  //   tenant_rate: 500       per-tenant requests per modelled second
  //   tenant_burst: 2s       bucket depth in seconds of refill
  //   max_tenants: 1024      bound on distinct tenant buckets
  //   shed_burn: 2.0         burn_short that counts as full pressure
  //   shed_inflight: 0.75    in-flight fraction that counts as full pressure
  //   resume_burn: 1.0       calm threshold for de-escalation
  //   resume_inflight: 0.5   calm threshold for de-escalation
  //   resume_hold: 2s        calm time (modelled) before relaxing one step
  struct AdmissionDecl {
    bool declared = false;
    std::string enabled_text;
    std::string tenant_rate_text;
    std::string tenant_burst_text;
    std::string max_tenants_text;
    std::string shed_burn_text;
    std::string shed_inflight_text;
    std::string resume_burn_text;
    std::string resume_inflight_text;
    std::string resume_hold_text;
    int line = 0;
  };

 private:
  friend class SpecParser;

  std::string name_;
  std::vector<std::string> param_names_;
  std::vector<TierDecl> tiers_;
  std::vector<RuleDecl> rules_;
  std::vector<SloDecl> slos_;
  // `journal_batch: 256K;` — group-commit batch bound for the metadata
  // journal. Empty = inherit TemplateOptions::journal_batch_bytes. May
  // reference a declared parameter.
  std::string journal_batch_text_;
  AdmissionDecl admission_;
};

}  // namespace tiera
