#include "core/spec_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "core/responses.h"

namespace tiera {

namespace {

// --- Tokenizer ---------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '%') {  // comment to end of line (the paper's style)
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '"') {
        ++pos_;
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          value.push_back(text_[pos_++]);
        }
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument(err("unterminated string"));
        }
        ++pos_;
        tokens.push_back({Token::Kind::kString, value, line_});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        // Number with unit suffix: 5G, 75%, 30s, 2min, 40KB/s, 0.5 ...
        std::string value;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '%' || text_[pos_] == '/' ||
                text_[pos_] == '.')) {
          value.push_back(text_[pos_++]);
        }
        tokens.push_back({Token::Kind::kNumber, value, line_});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        // Identifier; dots join attribute paths (insert.object.dirty).
        std::string value;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.')) {
          value.push_back(text_[pos_++]);
        }
        tokens.push_back({Token::Kind::kIdent, value, line_});
        continue;
      }
      // Multi-char symbols.
      if (c == '=' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        tokens.push_back({Token::Kind::kSymbol, "==", line_});
        pos_ += 2;
        continue;
      }
      if (c == '&' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '&') {
        tokens.push_back({Token::Kind::kSymbol, "&&", line_});
        pos_ += 2;
        continue;
      }
      static constexpr std::string_view kSingles = "{}():;,=[]<";
      if (kSingles.find(c) != std::string_view::npos) {
        tokens.push_back({Token::Kind::kSymbol, std::string(1, c), line_});
        ++pos_;
        continue;
      }
      return Status::InvalidArgument(
          err(std::string("unexpected character '") + c + "'"));
    }
    tokens.push_back({Token::Kind::kEnd, "", line_});
    return tokens;
  }

 private:
  std::string err(const std::string& message) const {
    std::ostringstream out;
    out << "spec line " << line_ << ": " << message;
    return out.str();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// --- Value parsing helpers ---------------------------------------------------

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// "30s", "2min", "500ms", "1h" -> modelled duration.
Result<Duration> parse_duration(std::string_view text) {
  double multiplier_ms = 0;
  std::string_view digits = text;
  if (ends_with(text, "ms")) {
    multiplier_ms = 1;
    digits.remove_suffix(2);
  } else if (ends_with(text, "min")) {
    multiplier_ms = 60'000;
    digits.remove_suffix(3);
  } else if (ends_with(text, "m")) {
    multiplier_ms = 60'000;
    digits.remove_suffix(1);
  } else if (ends_with(text, "s")) {
    multiplier_ms = 1'000;
    digits.remove_suffix(1);
  } else if (ends_with(text, "h")) {
    multiplier_ms = 3'600'000;
    digits.remove_suffix(1);
  } else {
    multiplier_ms = 1'000;  // bare numbers are seconds (paper granularity)
  }
  if (digits.empty()) return Status::InvalidArgument("empty duration");
  double value = 0;
  try {
    value = std::stod(std::string(digits));
  } catch (...) {
    return Status::InvalidArgument("bad duration: " + std::string(text));
  }
  return from_ms(value * multiplier_ms);
}

// "40KB/s", "1MB/s", "500B/s" -> bytes per second.
Result<double> parse_bandwidth(std::string_view text) {
  std::string_view body = text;
  if (!ends_with(body, "/s")) {
    return Status::InvalidArgument("bandwidth must end in /s: " +
                                   std::string(text));
  }
  body.remove_suffix(2);
  double multiplier = 1;
  if (ends_with(body, "KB")) {
    multiplier = 1024;
    body.remove_suffix(2);
  } else if (ends_with(body, "MB")) {
    multiplier = 1024.0 * 1024;
    body.remove_suffix(2);
  } else if (ends_with(body, "GB")) {
    multiplier = 1024.0 * 1024 * 1024;
    body.remove_suffix(2);
  } else if (ends_with(body, "B")) {
    body.remove_suffix(1);
  }
  try {
    return std::stod(std::string(body)) * multiplier;
  } catch (...) {
    return Status::InvalidArgument("bad bandwidth: " + std::string(text));
  }
}

// "75%" -> 0.75
Result<double> parse_percent(std::string_view text) {
  if (!ends_with(text, "%")) {
    return Status::InvalidArgument("expected percent: " + std::string(text));
  }
  try {
    return std::stod(std::string(text.substr(0, text.size() - 1))) / 100.0;
  } catch (...) {
    return Status::InvalidArgument("bad percent: " + std::string(text));
  }
}

// Whole-string non-negative double; also accepts "75%" as 0.75 so
// fraction-valued admission knobs read naturally either way.
Result<double> parse_fraction(const std::string& text, const char* what) {
  if (ends_with(text, "%")) return parse_percent(text);
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || value < 0) {
      return Status::InvalidArgument(std::string("bad ") + what + ": " + text);
    }
    return value;
  } catch (...) {
    return Status::InvalidArgument(std::string("bad ") + what + ": " + text);
  }
}

// Whole-string integer: rejects trailing garbage ("5x", "3s") that
// std::stoi alone would silently accept as a numeric prefix.
Result<int> parse_int_strict(const std::string& text, const char* what) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(text, &consumed);
    if (consumed != text.size()) {
      return Status::InvalidArgument(std::string("bad ") + what + ": " + text);
    }
    return value;
  } catch (...) {
    return Status::InvalidArgument(std::string("bad ") + what + ": " + text);
  }
}

}  // namespace

Result<Duration> parse_duration_text(std::string_view text) {
  return parse_duration(text);
}

// Public (declared in spec_parser.h) so tierad's --retries/--deadline/
// --breaker/--hedge flags share the exact grammar of the spec fields.
Result<ResiliencePolicy> parse_resilience_fields(const std::string& retries,
                                                 const std::string& deadline,
                                                 const std::string& breaker,
                                                 const std::string& hedge) {
  ResiliencePolicy policy;
  if (!retries.empty()) {
    Result<int> n = parse_int_strict(retries, "retries");
    if (!n.ok()) return n.status();
    policy.retry.max_retries = *n;
    if (policy.retry.max_retries < 0) {
      return Status::InvalidArgument("retries must be >= 0: " + retries);
    }
  }
  if (!deadline.empty()) {
    Result<Duration> d = parse_duration(deadline);
    if (!d.ok()) return d.status();
    policy.deadline = *d;
  }
  if (!breaker.empty()) {
    if (breaker == "on") {
      policy.breaker.enabled = true;
    } else if (breaker == "off") {
      policy.breaker.enabled = false;
    } else {
      Result<int> threshold = parse_int_strict(breaker, "breaker");
      if (!threshold.ok()) return threshold.status();
      policy.breaker.failure_threshold = *threshold;
      policy.breaker.enabled = true;
      if (policy.breaker.failure_threshold < 1) {
        return Status::InvalidArgument("breaker threshold must be >= 1");
      }
    }
  }
  if (!hedge.empty()) {
    if (hedge == "on") {
      policy.hedge.quantile = 0.95;
    } else if (hedge == "off") {
      policy.hedge.quantile = 0;
    } else {
      Result<double> q = parse_percent(hedge);
      if (!q.ok()) return q.status();
      if (*q <= 0 || *q >= 1) {
        return Status::InvalidArgument("hedge quantile must be in (0%,100%)");
      }
      policy.hedge.quantile = *q;
    }
  }
  return policy;
}

namespace {

std::vector<std::string> split_top_level(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(std::string s) {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c));
  };
  while (!s.empty() && is_space(s.front())) s.erase(s.begin());
  while (!s.empty() && is_space(s.back())) s.pop_back();
  return s;
}

}  // namespace

// --- Parser ------------------------------------------------------------------

class SpecParser {
 public:
  explicit SpecParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<InstanceSpec> run() {
    InstanceSpec spec;
    TIERA_RETURN_IF_ERROR(expect_ident("Tiera"));
    Result<std::string> name = take_ident();
    if (!name.ok()) return name.status();
    spec.name_ = *name;

    TIERA_RETURN_IF_ERROR(expect_symbol("("));
    while (!peek_symbol(")")) {
      // Parameters come as `type name` pairs (e.g. `time t`).
      Result<std::string> type = take_ident();
      if (!type.ok()) return type.status();
      Result<std::string> pname = take_ident();
      if (!pname.ok()) return pname.status();
      spec.param_names_.push_back(*pname);
      if (!accept_symbol(",")) break;
    }
    TIERA_RETURN_IF_ERROR(expect_symbol(")"));
    TIERA_RETURN_IF_ERROR(expect_symbol("{"));

    while (!peek_symbol("}")) {
      if (peek().kind == Token::Kind::kEnd) {
        return Status::InvalidArgument("spec: unexpected end of input");
      }
      if (peek_ident("event") || peek_ident("background")) {
        Result<InstanceSpec::RuleDecl> rule = parse_rule();
        if (!rule.ok()) return rule.status();
        spec.rules_.push_back(std::move(*rule));
      } else if (peek_ident("slo")) {
        Result<InstanceSpec::SloDecl> slo = parse_slo();
        if (!slo.ok()) return slo.status();
        spec.slos_.push_back(std::move(*slo));
      } else if (peek_ident("journal_batch") && peek(1).text == ":" &&
                 peek(2).text != "{") {
        // `journal_batch: 256K;` — distinguished from a tier declaration
        // (label `: {`) by the non-brace value.
        advance();
        TIERA_RETURN_IF_ERROR(expect_symbol(":"));
        Result<std::string> value = take_value();
        if (!value.ok()) return value.status();
        spec.journal_batch_text_ = *value;
        TIERA_RETURN_IF_ERROR(expect_symbol(";"));
      } else if (peek_ident("admission") && peek(1).text == ":" &&
                 peek(2).text == "{") {
        // `admission: { ... };` — same `label : { fields };` shape as a
        // tier declaration, so "admission" stays usable as a tier label in
        // old specs only if it ever was one (it was not).
        Result<InstanceSpec::AdmissionDecl> admission = parse_admission();
        if (!admission.ok()) return admission.status();
        spec.admission_ = std::move(*admission);
      } else {
        Result<InstanceSpec::TierDecl> tier = parse_tier();
        if (!tier.ok()) return tier.status();
        spec.tiers_.push_back(std::move(*tier));
      }
    }
    TIERA_RETURN_IF_ERROR(expect_symbol("}"));
    return spec;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool peek_symbol(std::string_view s) const {
    return peek().kind == Token::Kind::kSymbol && peek().text == s;
  }
  bool peek_ident(std::string_view s) const {
    return peek().kind == Token::Kind::kIdent && peek().text == s;
  }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool accept_symbol(std::string_view s) {
    if (!peek_symbol(s)) return false;
    advance();
    return true;
  }
  Status error(const std::string& message) const {
    std::ostringstream out;
    out << "spec line " << peek().line << ": " << message << " (got '"
        << peek().text << "')";
    return Status::InvalidArgument(out.str());
  }
  Status expect_symbol(std::string_view s) {
    if (!accept_symbol(s)) return error("expected '" + std::string(s) + "'");
    return Status::Ok();
  }
  Status expect_ident(std::string_view s) {
    if (!peek_ident(s)) return error("expected '" + std::string(s) + "'");
    advance();
    return Status::Ok();
  }
  Result<std::string> take_ident() {
    if (peek().kind != Token::Kind::kIdent) {
      return error("expected identifier");
    }
    std::string text = peek().text;
    advance();
    return text;
  }
  Result<std::string> take_value() {
    // Identifier, number, or string literal.
    if (peek().kind == Token::Kind::kIdent ||
        peek().kind == Token::Kind::kNumber) {
      std::string text = peek().text;
      advance();
      return text;
    }
    if (peek().kind == Token::Kind::kString) {
      std::string text = "\"" + peek().text + "\"";
      advance();
      return text;
    }
    return error("expected value");
  }

  Result<InstanceSpec::TierDecl> parse_tier() {
    InstanceSpec::TierDecl tier;
    Result<std::string> label = take_ident();
    if (!label.ok()) return label.status();
    tier.label = *label;
    TIERA_RETURN_IF_ERROR(expect_symbol(":"));
    TIERA_RETURN_IF_ERROR(expect_symbol("{"));
    while (!peek_symbol("}")) {
      Result<std::string> field = take_ident();
      if (!field.ok()) return field.status();
      TIERA_RETURN_IF_ERROR(expect_symbol(":"));
      Result<std::string> value = take_value();
      if (!value.ok()) return value.status();
      if (*field == "name") {
        tier.service = *value;
      } else if (*field == "size") {
        tier.size_text = *value;
      } else if (*field == "retries") {
        tier.retries_text = *value;
      } else if (*field == "deadline") {
        tier.deadline_text = *value;
      } else if (*field == "breaker") {
        tier.breaker_text = *value;
      } else if (*field == "hedge") {
        tier.hedge_text = *value;
      } else {
        return error("unknown tier field '" + *field + "'");
      }
      if (!accept_symbol(",")) break;
    }
    TIERA_RETURN_IF_ERROR(expect_symbol("}"));
    TIERA_RETURN_IF_ERROR(expect_symbol(";"));
    if (tier.service.empty() || tier.size_text.empty()) {
      return error("tier needs both name and size");
    }
    return tier;
  }

  Result<InstanceSpec::AdmissionDecl> parse_admission() {
    InstanceSpec::AdmissionDecl decl;
    decl.declared = true;
    decl.line = peek().line;
    TIERA_RETURN_IF_ERROR(expect_ident("admission"));
    TIERA_RETURN_IF_ERROR(expect_symbol(":"));
    TIERA_RETURN_IF_ERROR(expect_symbol("{"));
    while (!peek_symbol("}")) {
      Result<std::string> field = take_ident();
      if (!field.ok()) return field.status();
      TIERA_RETURN_IF_ERROR(expect_symbol(":"));
      Result<std::string> value = take_value();
      if (!value.ok()) return value.status();
      if (*field == "enabled") {
        decl.enabled_text = *value;
      } else if (*field == "tenant_rate") {
        decl.tenant_rate_text = *value;
      } else if (*field == "tenant_burst") {
        decl.tenant_burst_text = *value;
      } else if (*field == "max_tenants") {
        decl.max_tenants_text = *value;
      } else if (*field == "shed_burn") {
        decl.shed_burn_text = *value;
      } else if (*field == "shed_inflight") {
        decl.shed_inflight_text = *value;
      } else if (*field == "resume_burn") {
        decl.resume_burn_text = *value;
      } else if (*field == "resume_inflight") {
        decl.resume_inflight_text = *value;
      } else if (*field == "resume_hold") {
        decl.resume_hold_text = *value;
      } else {
        return error("unknown admission field '" + *field + "'");
      }
      if (!accept_symbol(",")) break;
    }
    TIERA_RETURN_IF_ERROR(expect_symbol("}"));
    TIERA_RETURN_IF_ERROR(expect_symbol(";"));
    return decl;
  }

  // Collect raw text until a closing ')' at depth 0 (used for event
  // expressions and call arguments, which we re-parse with domain rules).
  Result<std::string> collect_until_close_paren() {
    std::string out;
    int depth = 0;
    for (;;) {
      const Token& t = peek();
      if (t.kind == Token::Kind::kEnd) return error("unterminated '('");
      if (t.kind == Token::Kind::kSymbol) {
        if (t.text == "(") ++depth;
        if (t.text == ")") {
          if (depth == 0) return out;
          --depth;
        }
      }
      if (!out.empty()) out += " ";
      if (t.kind == Token::Kind::kString) {
        out += "\"" + t.text + "\"";
      } else {
        out += t.text;
      }
      advance();
    }
  }

  // `slo <metric> < <target> [window <duration>] [burn <short>/<long>] ;`
  // e.g. `slo get_p99 < 2ms window 60s burn 5m/1h;`. Values may be declared
  // parameters; they stay raw text until instantiation.
  Result<InstanceSpec::SloDecl> parse_slo() {
    InstanceSpec::SloDecl slo;
    slo.line = peek().line;
    TIERA_RETURN_IF_ERROR(expect_ident("slo"));
    Result<std::string> metric = take_ident();
    if (!metric.ok()) return metric.status();
    slo.metric_text = *metric;
    TIERA_RETURN_IF_ERROR(expect_symbol("<"));
    Result<std::string> target = take_value();
    if (!target.ok()) return target.status();
    slo.target_text = *target;
    while (!peek_symbol(";")) {
      if (peek_ident("window")) {
        advance();
        Result<std::string> value = take_value();
        if (!value.ok()) return value.status();
        slo.window_text = *value;
      } else if (peek_ident("burn")) {
        advance();
        Result<std::string> value = take_value();
        if (!value.ok()) return value.status();
        slo.burn_text = *value;
      } else {
        return error("expected 'window', 'burn', or ';' in slo declaration");
      }
    }
    TIERA_RETURN_IF_ERROR(expect_symbol(";"));
    return slo;
  }

  Result<InstanceSpec::RuleDecl> parse_rule() {
    InstanceSpec::RuleDecl rule;
    rule.line = peek().line;
    if (peek_ident("background")) {
      rule.background = true;
      advance();
    }
    TIERA_RETURN_IF_ERROR(expect_ident("event"));
    TIERA_RETURN_IF_ERROR(expect_symbol("("));
    Result<std::string> event_text = collect_until_close_paren();
    if (!event_text.ok()) return event_text.status();
    rule.event_text = trim(*event_text);
    TIERA_RETURN_IF_ERROR(expect_symbol(")"));
    TIERA_RETURN_IF_ERROR(expect_symbol(":"));
    TIERA_RETURN_IF_ERROR(expect_ident("response"));
    TIERA_RETURN_IF_ERROR(expect_symbol("{"));
    Result<std::vector<InstanceSpec::Stmt>> stmts = parse_stmt_block();
    if (!stmts.ok()) return stmts.status();
    rule.stmts = std::move(*stmts);
    TIERA_RETURN_IF_ERROR(expect_symbol("}"));
    return rule;
  }

  Result<std::vector<InstanceSpec::Stmt>> parse_stmt_block() {
    std::vector<InstanceSpec::Stmt> stmts;
    while (!peek_symbol("}")) {
      if (peek().kind == Token::Kind::kEnd) {
        return error("unterminated response block");
      }
      Result<InstanceSpec::Stmt> stmt = parse_stmt();
      if (!stmt.ok()) return stmt.status();
      stmts.push_back(std::move(*stmt));
    }
    return stmts;
  }

  Result<InstanceSpec::Stmt> parse_stmt() {
    InstanceSpec::Stmt stmt;
    stmt.line = peek().line;
    if (peek_ident("if")) {
      advance();
      stmt.kind = InstanceSpec::Stmt::Kind::kIf;
      TIERA_RETURN_IF_ERROR(expect_symbol("("));
      Result<std::string> cond = collect_until_close_paren();
      if (!cond.ok()) return cond.status();
      stmt.if_condition = trim(*cond);
      TIERA_RETURN_IF_ERROR(expect_symbol(")"));
      TIERA_RETURN_IF_ERROR(expect_symbol("{"));
      Result<std::vector<InstanceSpec::Stmt>> body = parse_stmt_block();
      if (!body.ok()) return body.status();
      stmt.body = std::move(*body);
      TIERA_RETURN_IF_ERROR(expect_symbol("}"));
      return stmt;
    }

    Result<std::string> head = take_ident();
    if (!head.ok()) return head.status();

    if (accept_symbol("=")) {
      // Assignment: insert.object.dirty = true;
      stmt.kind = InstanceSpec::Stmt::Kind::kAssign;
      stmt.assign_target = *head;
      Result<std::string> value = take_value();
      if (!value.ok()) return value.status();
      stmt.assign_value = *value;
      TIERA_RETURN_IF_ERROR(expect_symbol(";"));
      return stmt;
    }

    // Response call: verb(name: value, ...);
    stmt.kind = InstanceSpec::Stmt::Kind::kCall;
    stmt.call.verb = *head;
    stmt.call.line = stmt.line;
    TIERA_RETURN_IF_ERROR(expect_symbol("("));
    while (!peek_symbol(")")) {
      Result<std::string> arg_name = take_ident();
      if (!arg_name.ok()) return arg_name.status();
      TIERA_RETURN_IF_ERROR(expect_symbol(":"));
      // Argument values run until the next top-level ',' or ')'.
      std::string value;
      int depth = 0;
      for (;;) {
        const Token& t = peek();
        if (t.kind == Token::Kind::kEnd) return error("unterminated call");
        if (t.kind == Token::Kind::kSymbol) {
          if (t.text == "(" || t.text == "[") ++depth;
          if (t.text == ")" && depth == 0) break;
          if (t.text == ")" || t.text == "]") --depth;
          if (t.text == "," && depth == 0) break;
        }
        if (!value.empty()) value += " ";
        value += (t.kind == Token::Kind::kString) ? "\"" + t.text + "\""
                                                  : t.text;
        advance();
      }
      stmt.call.args[*arg_name] = trim(value);
      if (!accept_symbol(",")) break;
    }
    TIERA_RETURN_IF_ERROR(expect_symbol(")"));
    TIERA_RETURN_IF_ERROR(expect_symbol(";"));
    return stmt;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// --- Instantiation -----------------------------------------------------------

namespace {

class SpecInstantiator {
 public:
  SpecInstantiator(const std::map<std::string, std::string>& args)
      : args_(args) {}

  // Substitute a declared parameter with its bound argument.
  std::string subst(std::string text) const {
    auto it = args_.find(text);
    return it == args_.end() ? text : it->second;
  }

  Result<Selector> parse_selector(std::string_view raw_text) const {
    const std::string text = trim(std::string(raw_text));
    if (text == "insert.object" || text == "get.object" ||
        text == "delete.object") {
      return Selector::action_object();
    }
    if (!text.empty() && text.front() == '"' && text.back() == '"') {
      return Selector::by_id(text.substr(1, text.size() - 2));
    }
    if (ends_with(text, ".oldest")) {
      return Selector::oldest_in(text.substr(0, text.size() - 7));
    }
    if (ends_with(text, ".newest")) {
      return Selector::newest_in(text.substr(0, text.size() - 7));
    }
    // Conjunction of object.X == Y clauses.
    Selector selector = Selector::all();
    for (std::string clause : split_top_level(text, '&')) {
      clause = trim(clause);
      if (clause.empty()) continue;
      const auto eq = clause.find("==");
      if (eq == std::string::npos) {
        return Status::InvalidArgument("bad what-clause: " + clause);
      }
      const std::string lhs = trim(clause.substr(0, eq));
      std::string rhs = trim(clause.substr(eq + 2));
      if (lhs == "object.location") {
        selector.tier = rhs;
      } else if (lhs == "object.dirty") {
        selector.dirty = (rhs == "true");
      } else if (lhs == "object.tag") {
        if (rhs.size() >= 2 && rhs.front() == '"') {
          rhs = rhs.substr(1, rhs.size() - 2);
        }
        selector.tag = rhs;
      } else {
        return Status::InvalidArgument("unknown object attribute: " + lhs);
      }
    }
    return selector;
  }

  Result<std::vector<std::string>> parse_tier_list(
      std::string_view raw_text) const {
    std::string text = trim(std::string(raw_text));
    if (!text.empty() && text.front() == '[') {
      if (text.back() != ']') {
        return Status::InvalidArgument("unterminated tier list");
      }
      text = text.substr(1, text.size() - 2);
    }
    std::vector<std::string> tiers;
    for (std::string part : split_top_level(text, ',')) {
      part = trim(part);
      if (!part.empty()) tiers.push_back(part);
    }
    if (tiers.empty()) return Status::InvalidArgument("empty tier list");
    return tiers;
  }

  Result<Condition> parse_condition(std::string_view raw_text) const {
    const std::string text = trim(std::string(raw_text));
    const auto eq = text.find("==");
    std::string lhs = trim(eq == std::string::npos ? text : text.substr(0, eq));
    if (ends_with(lhs, ".filled")) {
      const std::string tier = lhs.substr(0, lhs.size() - 7);
      if (eq == std::string::npos) return Condition::tier_cannot_fit(tier);
      Result<double> pct = parse_percent(trim(text.substr(eq + 2)));
      if (!pct.ok()) return pct.status();
      return Condition::tier_fill_at_least(tier, *pct);
    }
    if (ends_with(lhs, ".used")) {
      const std::string tier = lhs.substr(0, lhs.size() - 5);
      if (eq == std::string::npos) {
        return Status::InvalidArgument("'.used' needs a comparison value");
      }
      Result<std::uint64_t> bytes = parse_size(trim(text.substr(eq + 2)));
      if (!bytes.ok()) return bytes.status();
      return Condition::tier_used_at_least(tier,
                                           static_cast<double>(*bytes));
    }
    return Status::InvalidArgument("unsupported condition: " + text);
  }

  Result<ResponsePtr> build_call(const InstanceSpec::Call& call) const {
    const auto arg = [&](const std::string& name) -> std::optional<std::string> {
      auto it = call.args.find(name);
      if (it == call.args.end()) return std::nullopt;
      return subst(it->second);
    };
    const auto require_what = [&]() -> Result<Selector> {
      const auto value = arg("what");
      if (!value) {
        return Status::InvalidArgument(call.verb + " needs 'what:'");
      }
      return parse_selector(*value);
    };
    const auto require_to = [&]() -> Result<std::vector<std::string>> {
      const auto value = arg("to");
      if (!value) return Status::InvalidArgument(call.verb + " needs 'to:'");
      return parse_tier_list(*value);
    };
    const auto optional_bandwidth = [&]() -> Result<double> {
      const auto value = arg("bandwidth");
      if (!value) return 0.0;
      return parse_bandwidth(*value);
    };

    if (call.verb == "store" || call.verb == "storeOnce") {
      Result<Selector> what = require_what();
      if (!what.ok()) return what.status();
      Result<std::vector<std::string>> to = require_to();
      if (!to.ok()) return to.status();
      return ResponsePtr(std::make_unique<StoreResponse>(
          *what, *to, call.verb == "storeOnce"));
    }
    if (call.verb == "retrieve") {
      Result<Selector> what = require_what();
      if (!what.ok()) return what.status();
      return ResponsePtr(std::make_unique<RetrieveResponse>(*what));
    }
    if (call.verb == "copy" || call.verb == "move") {
      Result<Selector> what = require_what();
      if (!what.ok()) return what.status();
      Result<std::vector<std::string>> to = require_to();
      if (!to.ok()) return to.status();
      Result<double> bandwidth = optional_bandwidth();
      if (!bandwidth.ok()) return bandwidth.status();
      if (call.verb == "copy") {
        return ResponsePtr(
            std::make_unique<CopyResponse>(*what, *to, *bandwidth));
      }
      return ResponsePtr(
          std::make_unique<MoveResponse>(*what, *to, *bandwidth));
    }
    if (call.verb == "delete") {
      Result<Selector> what = require_what();
      if (!what.ok()) return what.status();
      std::vector<std::string> from;
      if (const auto value = arg("from")) {
        Result<std::vector<std::string>> tiers = parse_tier_list(*value);
        if (!tiers.ok()) return tiers.status();
        from = *tiers;
      }
      return ResponsePtr(std::make_unique<DeleteResponse>(*what, from));
    }
    if (call.verb == "encrypt" || call.verb == "decrypt") {
      Result<Selector> what = require_what();
      if (!what.ok()) return what.status();
      auto key = arg("key");
      if (!key) return Status::InvalidArgument(call.verb + " needs 'key:'");
      std::string passphrase = *key;
      if (passphrase.size() >= 2 && passphrase.front() == '"') {
        passphrase = passphrase.substr(1, passphrase.size() - 2);
      }
      if (call.verb == "encrypt") {
        return ResponsePtr(std::make_unique<EncryptResponse>(*what, passphrase));
      }
      return ResponsePtr(std::make_unique<DecryptResponse>(*what, passphrase));
    }
    if (call.verb == "compress") {
      Result<Selector> what = require_what();
      if (!what.ok()) return what.status();
      return ResponsePtr(std::make_unique<CompressResponse>(*what));
    }
    if (call.verb == "uncompress") {
      Result<Selector> what = require_what();
      if (!what.ok()) return what.status();
      return ResponsePtr(std::make_unique<UncompressResponse>(*what));
    }
    if (call.verb == "prefetch") {
      const auto lookahead = arg("lookahead");
      if (!lookahead) {
        return Status::InvalidArgument("prefetch needs 'lookahead:'");
      }
      std::size_t k = 0;
      try {
        k = static_cast<std::size_t>(std::stoul(*lookahead));
      } catch (...) {
        return Status::InvalidArgument("bad lookahead: " + *lookahead);
      }
      Result<std::vector<std::string>> to = require_to();
      if (!to.ok()) return to.status();
      return ResponsePtr(std::make_unique<PrefetchResponse>(k, *to));
    }
    if (call.verb == "snapshot") {
      Result<Selector> what = require_what();
      if (!what.ok()) return what.status();
      auto name = arg("name");
      if (!name) return Status::InvalidArgument("snapshot needs 'name:'");
      std::string label = *name;
      if (label.size() >= 2 && label.front() == '"') {
        label = label.substr(1, label.size() - 2);
      }
      std::vector<std::string> to;
      if (const auto value = arg("to")) {
        Result<std::vector<std::string>> tiers = parse_tier_list(*value);
        if (!tiers.ok()) return tiers.status();
        to = *tiers;
      }
      return ResponsePtr(
          std::make_unique<SnapshotResponse>(*what, label, to));
    }
    if (call.verb == "grow" || call.verb == "shrink") {
      const auto what = arg("what");
      if (!what) return Status::InvalidArgument(call.verb + " needs 'what:'");
      const auto amount =
          call.verb == "grow" ? arg("increment") : arg("decrement");
      if (!amount) {
        return Status::InvalidArgument(call.verb +
                                       " needs 'increment:'/'decrement:'");
      }
      Result<double> pct = parse_percent(*amount);
      if (!pct.ok()) return pct.status();
      if (call.verb == "grow") {
        return ResponsePtr(
            std::make_unique<GrowResponse>(*what, *pct * 100.0));
      }
      return ResponsePtr(
          std::make_unique<ShrinkResponse>(*what, *pct * 100.0));
    }
    return Status::InvalidArgument("unknown response verb: " + call.verb);
  }

  Result<ResponseList> build_stmts(
      const std::vector<InstanceSpec::Stmt>& stmts) const {
    ResponseList out;
    for (const auto& stmt : stmts) {
      switch (stmt.kind) {
        case InstanceSpec::Stmt::Kind::kCall: {
          Result<ResponsePtr> response = build_call(stmt.call);
          if (!response.ok()) return response.status();
          out.push_back(std::move(*response));
          break;
        }
        case InstanceSpec::Stmt::Kind::kAssign: {
          if (!ends_with(stmt.assign_target, ".dirty")) {
            return Status::InvalidArgument("only '.dirty' is assignable: " +
                                           stmt.assign_target);
          }
          const std::string target =
              stmt.assign_target.substr(0, stmt.assign_target.size() - 6);
          Result<Selector> what = parse_selector(target);
          if (!what.ok()) return what.status();
          out.push_back(std::make_unique<SetDirtyResponse>(
              *what, stmt.assign_value == "true"));
          break;
        }
        case InstanceSpec::Stmt::Kind::kIf: {
          Result<Condition> condition = parse_condition(stmt.if_condition);
          if (!condition.ok()) return condition.status();
          Result<ResponseList> body = build_stmts(stmt.body);
          if (!body.ok()) return body.status();
          out.push_back(std::make_unique<ConditionalResponse>(
              *condition, std::move(*body)));
          break;
        }
      }
    }
    return out;
  }

  Result<EventDef> build_event(const std::string& raw_text,
                               bool background) const {
    std::string text = trim(raw_text);
    bool sliding = false;
    constexpr std::string_view kSliding = "sliding ";
    if (text.rfind(kSliding, 0) == 0) {
      sliding = true;
      text = trim(text.substr(kSliding.size()));
    }

    // Optional tag clause: `<action-expr> && insert.object.tag == "x"`.
    std::string tag_filter;
    const auto amp = text.find("&&");
    if (amp != std::string::npos) {
      std::string clause = trim(text.substr(amp + 2));
      text = trim(text.substr(0, amp));
      const auto tag_eq = clause.find("==");
      const std::string tag_lhs =
          trim(tag_eq == std::string::npos ? clause
                                           : clause.substr(0, tag_eq));
      if (!ends_with(tag_lhs, ".object.tag") || tag_eq == std::string::npos) {
        return Status::InvalidArgument("unsupported event clause: " + clause);
      }
      tag_filter = trim(clause.substr(tag_eq + 2));
      if (tag_filter.size() >= 2 && tag_filter.front() == '"') {
        tag_filter = tag_filter.substr(1, tag_filter.size() - 2);
      }
    }

    const auto eq = text.find("==");
    const auto single_eq = text.find('=');
    std::string lhs =
        trim(eq != std::string::npos
                 ? text.substr(0, eq)
                 : (single_eq != std::string::npos ? text.substr(0, single_eq)
                                                   : text));
    std::string rhs;
    if (eq != std::string::npos) {
      rhs = trim(text.substr(eq + 2));
    } else if (single_eq != std::string::npos) {
      rhs = trim(text.substr(single_eq + 1));
    }

    EventDef event;
    if (lhs == "time") {
      Result<Duration> period = parse_duration(subst(rhs));
      if (!period.ok()) return period.status();
      event = EventDef::on_timer(*period);
      return event;  // timers are implicitly background
    }
    if (lhs == "insert.into" || lhs == "get.from" || lhs == "delete.from") {
      ActionType action = ActionType::kInsert;
      if (lhs == "get.from") action = ActionType::kGet;
      if (lhs == "delete.from") action = ActionType::kDelete;
      event = EventDef::on_action(action, rhs, tag_filter);
      event.background = background;
      return event;
    }
    if (!tag_filter.empty()) {
      return Status::InvalidArgument(
          "tag clauses only apply to action events: " + text);
    }
    if (lhs.rfind("slo.", 0) == 0) {
      // `slo.<name> == violated` — fires while the named objective is out
      // of budget; re-arms when it recovers.
      if (subst(rhs) != "violated") {
        return Status::InvalidArgument(
            "slo events must compare against 'violated': " + text);
      }
      event = EventDef::on_slo(lhs.substr(4));
      event.background = background;
      return event;
    }
    if (ends_with(lhs, ".filled")) {
      Result<double> pct = parse_percent(subst(rhs));
      if (!pct.ok()) return pct.status();
      event = EventDef::on_threshold(lhs.substr(0, lhs.size() - 7),
                                     TierAttribute::kFillFraction, *pct,
                                     sliding);
      event.background = background;
      return event;
    }
    if (ends_with(lhs, ".used")) {
      Result<std::uint64_t> bytes = parse_size(subst(rhs));
      if (!bytes.ok()) return bytes.status();
      event = EventDef::on_threshold(lhs.substr(0, lhs.size() - 5),
                                     TierAttribute::kUsedBytes,
                                     static_cast<double>(*bytes), sliding);
      event.background = background;
      return event;
    }
    if (ends_with(lhs, ".breaker")) {
      const std::string state = subst(rhs);
      double level = 0;
      if (state == "open") {
        level = static_cast<double>(static_cast<int>(BreakerState::kOpen));
      } else if (state == "half_open" || state == "half-open") {
        level = static_cast<double>(static_cast<int>(BreakerState::kHalfOpen));
      } else {
        return Status::InvalidArgument("bad breaker state: " + state);
      }
      event = EventDef::on_threshold(lhs.substr(0, lhs.size() - 8),
                                     TierAttribute::kBreakerState, level);
      event.background = background;
      return event;
    }
    if (ends_with(lhs, ".objects")) {
      try {
        const double count = std::stod(subst(rhs));
        event = EventDef::on_threshold(lhs.substr(0, lhs.size() - 8),
                                       TierAttribute::kObjectCount, count,
                                       sliding);
        event.background = background;
        return event;
      } catch (...) {
        return Status::InvalidArgument("bad object count: " + rhs);
      }
    }
    return Status::InvalidArgument("unsupported event: " + text);
  }

  Result<SloSpec> build_slo(const InstanceSpec::SloDecl& decl) const {
    SloSpec spec;
    // The declared metric doubles as the objective's name (what `slo.<name>`
    // events and the `{slo=...}` metric label refer to). A dotted prefix
    // that is not itself a signal scopes the objective to one tier:
    // `tier2.get_p99` = p99 of GETs served by tier2.
    spec.name = decl.metric_text;
    if (!slo_signal_from_name(decl.metric_text, &spec.signal)) {
      const auto dot = decl.metric_text.rfind('.');
      if (dot == std::string::npos ||
          !slo_signal_from_name(decl.metric_text.substr(dot + 1),
                                &spec.signal)) {
        return Status::InvalidArgument("unknown slo metric: " +
                                       decl.metric_text);
      }
      spec.tier = decl.metric_text.substr(0, dot);
    }
    const std::string target = subst(decl.target_text);
    if (slo_is_latency(spec.signal)) {
      Result<Duration> d = parse_duration(target);
      if (!d.ok()) return d.status();
      spec.target_ms = to_seconds(*d) * 1000.0;
    } else {
      Result<double> pct = parse_percent(target);
      if (!pct.ok()) return pct.status();
      spec.target_fraction = *pct;
    }
    if (!decl.window_text.empty()) {
      Result<Duration> window = parse_duration(subst(decl.window_text));
      if (!window.ok()) return window.status();
      spec.window = *window;
    }
    if (!decl.burn_text.empty()) {
      const std::string burn = subst(decl.burn_text);
      const auto slash = burn.find('/');
      if (slash == std::string::npos) {
        return Status::InvalidArgument(
            "burn windows must be '<short>/<long>': " + burn);
      }
      Result<Duration> burn_short = parse_duration(burn.substr(0, slash));
      if (!burn_short.ok()) return burn_short.status();
      Result<Duration> burn_long = parse_duration(burn.substr(slash + 1));
      if (!burn_long.ok()) return burn_long.status();
      spec.burn_short = *burn_short;
      spec.burn_long = *burn_long;
    }
    return spec;
  }

 private:
  const std::map<std::string, std::string>& args_;
};

}  // namespace

Result<InstanceSpec> InstanceSpec::parse(std::string_view text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.run();
  if (!tokens.ok()) return tokens.status();
  SpecParser parser(std::move(*tokens));
  return parser.run();
}

Result<InstanceSpec> InstanceSpec::parse_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("spec file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

Result<AdmissionConfig> InstanceSpec::admission_config() const {
  AdmissionConfig config;
  if (!admission_.declared) return config;
  const auto field_error = [this](const Status& status) {
    return Status::InvalidArgument("spec line " +
                                   std::to_string(admission_.line) +
                                   ": admission: " + status.message());
  };
  if (!admission_.enabled_text.empty()) {
    const std::string& v = admission_.enabled_text;
    if (v == "on" || v == "true") {
      config.enabled = true;
    } else if (v == "off" || v == "false") {
      config.enabled = false;
    } else {
      return field_error(Status::InvalidArgument("bad enabled: " + v));
    }
  }
  if (!admission_.tenant_rate_text.empty()) {
    Result<double> rate =
        parse_fraction(admission_.tenant_rate_text, "tenant_rate");
    if (!rate.ok()) return field_error(rate.status());
    config.tenant_rate = *rate;
  }
  if (!admission_.tenant_burst_text.empty()) {
    Result<Duration> burst = parse_duration(admission_.tenant_burst_text);
    if (!burst.ok()) return field_error(burst.status());
    config.tenant_burst_s = to_seconds(*burst);
  }
  if (!admission_.max_tenants_text.empty()) {
    Result<int> n = parse_int_strict(admission_.max_tenants_text,
                                     "max_tenants");
    if (!n.ok()) return field_error(n.status());
    if (*n < 1) {
      return field_error(Status::InvalidArgument(
          "max_tenants must be >= 1: " + admission_.max_tenants_text));
    }
    config.max_tenants = static_cast<std::size_t>(*n);
  }
  if (!admission_.shed_burn_text.empty()) {
    Result<double> v = parse_fraction(admission_.shed_burn_text, "shed_burn");
    if (!v.ok()) return field_error(v.status());
    config.shed_burn = *v;
  }
  if (!admission_.shed_inflight_text.empty()) {
    Result<double> v =
        parse_fraction(admission_.shed_inflight_text, "shed_inflight");
    if (!v.ok()) return field_error(v.status());
    config.shed_inflight = *v;
  }
  if (!admission_.resume_burn_text.empty()) {
    Result<double> v =
        parse_fraction(admission_.resume_burn_text, "resume_burn");
    if (!v.ok()) return field_error(v.status());
    config.resume_burn = *v;
  }
  if (!admission_.resume_inflight_text.empty()) {
    Result<double> v =
        parse_fraction(admission_.resume_inflight_text, "resume_inflight");
    if (!v.ok()) return field_error(v.status());
    config.resume_inflight = *v;
  }
  if (!admission_.resume_hold_text.empty()) {
    Result<Duration> hold = parse_duration(admission_.resume_hold_text);
    if (!hold.ok()) return field_error(hold.status());
    config.resume_hold = *hold;
  }
  return config;
}

Status InstanceSpec::apply_to(
    TieraInstance& instance,
    const std::map<std::string, std::string>& args) const {
  SpecInstantiator inst(args);
  // SLOs first: a rule may reference `slo.<name>`, and the engine rejects
  // unknown targets only at fire time, so registration order keeps the
  // common path sane.
  for (const auto& slo_decl : slos_) {
    Result<SloSpec> slo = inst.build_slo(slo_decl);
    if (!slo.ok()) return slo.status();
    TIERA_RETURN_IF_ERROR(instance.add_slo(*slo));
  }
  for (const auto& rule_decl : rules_) {
    Result<EventDef> event = inst.build_event(rule_decl.event_text,
                                              rule_decl.background);
    if (!event.ok()) return event.status();
    Result<ResponseList> responses = inst.build_stmts(rule_decl.stmts);
    if (!responses.ok()) return responses.status();
    Rule rule;
    rule.name = name_ + ":" + rule_decl.event_text;
    rule.event = *event;
    rule.responses = std::move(*responses);
    instance.add_rule(std::move(rule));
  }
  return Status::Ok();
}

Result<InstancePtr> InstanceSpec::instantiate(
    const TemplateOptions& opts,
    const std::map<std::string, std::string>& args) const {
  for (const auto& param : param_names_) {
    if (args.find(param) == args.end()) {
      return Status::InvalidArgument("missing argument for parameter '" +
                                     param + "'");
    }
  }
  InstanceConfig config;
  config.name = name_;
  config.data_dir = opts.data_dir;
  config.response_threads = opts.response_threads;
  config.persist_metadata = opts.persist_metadata;
  config.journal_sync = opts.journal_sync;
  config.journal_batch_bytes = opts.journal_batch_bytes;
  config.journal_batch_wait = opts.journal_batch_wait;
  SpecInstantiator inst(args);
  if (!journal_batch_text_.empty()) {
    Result<std::uint64_t> batch =
        parse_size(inst.subst(journal_batch_text_));
    if (!batch.ok()) return batch.status();
    config.journal_batch_bytes = *batch;
  }
  for (const auto& tier : tiers_) {
    Result<std::uint64_t> size = parse_size(inst.subst(tier.size_text));
    if (!size.ok()) return size.status();
    TierSpec spec;
    spec.service = tier.service;
    spec.label = tier.label;
    spec.capacity_bytes = *size;
    if (tier.has_resilience()) {
      Result<ResiliencePolicy> resilience = parse_resilience_fields(
          inst.subst(tier.retries_text), inst.subst(tier.deadline_text),
          inst.subst(tier.breaker_text), inst.subst(tier.hedge_text));
      if (!resilience.ok()) return resilience.status();
      spec.resilience = *resilience;
    } else {
      // Declarations without knobs inherit the caller's default (tierad's
      // --retries/--breaker/... flags).
      spec.resilience = opts.default_resilience;
    }
    config.tiers.push_back(std::move(spec));
  }
  Result<InstancePtr> instance = TieraInstance::create(std::move(config));
  if (!instance.ok()) return instance;
  TIERA_RETURN_IF_ERROR(apply_to(**instance, args));
  return instance;
}

}  // namespace tiera
