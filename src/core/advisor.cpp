#include "core/advisor.h"

#include <cmath>
#include <sstream>

#include "store/latency_model.h"
#include "store/mem_tier.h"
#include "store/file_tier.h"

namespace tiera {

namespace {

struct ServiceModel {
  const char* name;
  double latency_ms;          // per-read, object-sized
  double dollars_per_gb;      // capacity-billed monthly price
};

// Read latencies for the requirement's object size, from the same models
// the tiers charge at runtime.
ServiceModel memcached_model(std::size_t object_bytes) {
  Rng rng(1);
  LatencyModel m = LatencyModel::memcached_local();
  m.jitter = 0;
  return {"Memcached", to_ms(m.sample_read(object_bytes, rng)),
          MemTier::default_pricing().dollars_per_gb_month};
}
ServiceModel ebs_model(std::size_t object_bytes) {
  Rng rng(1);
  LatencyModel m = LatencyModel::ebs();
  m.jitter = 0;
  return {"EBS", to_ms(m.sample_read(object_bytes, rng)),
          BlockTier::default_pricing().dollars_per_gb_month};
}
ServiceModel s3_model(std::size_t object_bytes) {
  Rng rng(1);
  LatencyModel m = LatencyModel::s3();
  m.jitter = 0;
  return {"S3", to_ms(m.sample_read(object_bytes, rng)),
          ObjectTier::default_pricing().dollars_per_gb_month};
}

}  // namespace

double predicted_hit_fraction(Requirements::Distribution distribution,
                              double zipf_theta, double capacity_fraction,
                              double key_count) {
  capacity_fraction = std::clamp(capacity_fraction, 0.0, 1.0);
  if (distribution == Requirements::Distribution::kUniform) {
    return capacity_fraction;  // an LRU cache holds a uniform random subset
  }
  if (capacity_fraction <= 0) return 0;
  if (key_count < 2) return 1.0;
  // Zipfian mass of the hottest x*N ranks: H_theta(xN)/H_theta(N) with the
  // integral approximation H_theta(n) ≈ (n^(1-theta) - 1)/(1 - theta)
  // (ln n when theta = 1).
  const auto harmonic = [&](double n) {
    n = std::max(n, 1.0);
    if (std::abs(1.0 - zipf_theta) < 1e-6) return std::log(n) + 1.0;
    return (std::pow(n, 1.0 - zipf_theta) - 1.0) / (1.0 - zipf_theta) + 1.0;
  };
  return std::clamp(
      harmonic(capacity_fraction * key_count) / harmonic(key_count), 0.0,
      1.0);
}

std::string InstancePlan::summary() const {
  std::ostringstream out;
  out << "plan:";
  for (const auto& tier : tiers) {
    out << " " << tier.service << "=" << static_cast<int>(tier.fraction * 100)
        << "%";
  }
  out << "  predicted p-latency " << predicted_latency_ms << " ms, mean "
      << predicted_mean_ms << " ms, $" << monthly_cost << "/month";
  return out.str();
}

Result<InstancePtr> InstancePlan::instantiate(
    const TemplateOptions& opts, std::uint64_t working_set_bytes) const {
  double mem = 0, ebs = 0, s3 = 0;
  for (const auto& tier : tiers) {
    if (tier.service == std::string("Memcached")) mem = tier.fraction;
    if (tier.service == std::string("EBS")) ebs = tier.fraction;
    if (tier.service == std::string("S3")) s3 = tier.fraction;
  }
  // Zero-capacity tiers would be unbounded in the tier model; clamp every
  // share to a small positive floor so the template's LRU chain stays
  // capacity-bounded end to end.
  return make_tiered_lru_instance(opts, working_set_bytes,
                                  std::max(mem, 0.01), std::max(ebs, 0.01),
                                  std::max(s3, 0.05));
}

Result<InstancePlan> advise(const Requirements& req) {
  if (req.read_latency_ms <= 0 || req.working_set_bytes == 0) {
    return Status::InvalidArgument("bad requirements");
  }
  const ServiceModel mem = memcached_model(req.object_bytes);
  const ServiceModel ebs = ebs_model(req.object_bytes);
  const ServiceModel s3 = s3_model(req.object_bytes);
  const double gb =
      static_cast<double>(req.working_set_bytes) / (1024.0 * 1024.0 * 1024.0);
  const double keys = std::max<double>(
      2.0, static_cast<double>(req.working_set_bytes) /
               static_cast<double>(req.object_bytes));

  std::optional<InstancePlan> best;
  // Grid search over memcached/EBS shares in 5% steps; S3 absorbs the rest.
  for (int mem_pct = 0; mem_pct <= 100; mem_pct += 5) {
    for (int ebs_pct = 0; ebs_pct + mem_pct <= 100; ebs_pct += 5) {
      const double mem_fraction = mem_pct / 100.0;
      const double ebs_fraction = ebs_pct / 100.0;
      const double s3_fraction = 1.0 - mem_fraction - ebs_fraction;

      // Share of reads served per tier under the LRU stack: the hottest
      // mem_fraction of the working set hits Memcached, the next slice
      // EBS, the cold tail S3.
      const double mem_hits = predicted_hit_fraction(
          req.distribution, req.zipf_theta, mem_fraction, keys);
      const double mem_ebs_hits = predicted_hit_fraction(
          req.distribution, req.zipf_theta, mem_fraction + ebs_fraction,
          keys);
      const double ebs_hits = std::max(0.0, mem_ebs_hits - mem_hits);
      const double s3_hits = std::max(0.0, 1.0 - mem_ebs_hits);

      // Latency at the requested percentile: the slowest tier still needed
      // to cover `percentile` of reads.
      double percentile_latency = mem.latency_ms;
      if (req.percentile > mem_hits) percentile_latency = ebs.latency_ms;
      if (req.percentile > mem_ebs_hits) percentile_latency = s3.latency_ms;
      if (s3_fraction <= 0 && req.percentile > mem_ebs_hits) {
        continue;  // infeasible split (uncovered tail with no S3)
      }
      const double mean = mem_hits * mem.latency_ms +
                          ebs_hits * ebs.latency_ms + s3_hits * s3.latency_ms;
      const double cost = gb * (mem_fraction * mem.dollars_per_gb +
                                ebs_fraction * ebs.dollars_per_gb +
                                s3_fraction * s3.dollars_per_gb);
      if (percentile_latency > req.read_latency_ms) continue;
      if (req.budget_dollars && cost > *req.budget_dollars) continue;
      if (best && best->monthly_cost <= cost) continue;

      InstancePlan plan;
      plan.tiers = {
          {"Memcached", mem_fraction, mem_hits, mem.latency_ms},
          {"EBS", ebs_fraction, ebs_hits, ebs.latency_ms},
          {"S3", s3_fraction, s3_hits, s3.latency_ms},
      };
      plan.predicted_latency_ms = percentile_latency;
      plan.predicted_mean_ms = mean;
      plan.monthly_cost = cost;
      best = plan;
    }
  }
  if (!best) {
    return Status::InvalidArgument(
        "no tier mix meets the latency/budget requirements");
  }
  return *best;
}

}  // namespace tiera
