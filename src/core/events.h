// Event definitions — the left-hand side of Tiera's event : response pairs.
//
// Three kinds, exactly as in the paper (§2.2/§3):
//   * action events    — fire when an insert/get/delete is performed,
//                        optionally filtered by tier and/or object tag;
//   * timer events     — fire every `period` of modelled time;
//   * threshold events — fire when a tier attribute crosses a value
//                        (edge-triggered: they re-arm after the attribute
//                        falls back below the threshold).
// Events are foreground by default; background events are serviced by the
// control layer's response thread pool.
#pragma once

#include <optional>
#include <string>

#include "common/clock.h"

namespace tiera {

enum class ActionType { kInsert, kGet, kDelete };

std::string_view to_string(ActionType a);

struct ActionEventDef {
  ActionType action = ActionType::kInsert;
  // Restrict to actions touching this tier (e.g. `insert.into == tier1`).
  // Empty = any tier (`insert.into`).
  std::string tier_filter;
  // Restrict to objects carrying this tag (object-class policies).
  std::string tag_filter;
};

struct TimerEventDef {
  Duration period{};
};

enum class TierAttribute {
  kFillFraction,  // used/capacity      (tierX.filled == 75%)
  kUsedBytes,     // bytes stored       (tierX.used == 50M)
  kObjectCount,   // number of objects  (tierX.objects == 1000)
  kBreakerState,  // circuit breaker    (tierX.breaker == open); the value is
                  // the BreakerState encoding (closed 0, half-open 1, open 2)
  kSloViolated,   // SLO state          (slo.get_p99 == violated); `tier`
                  // holds the SLO name and the value is 1 while violated
};

struct ThresholdEventDef {
  // Tier label — or, for kSloViolated, the SLO name (SLOs are not tier
  // attributes; reusing the field keeps threshold plumbing uniform).
  std::string tier;
  TierAttribute attribute = TierAttribute::kFillFraction;
  double threshold = 1.0;  // fraction for kFillFraction, absolute otherwise
  // Sliding thresholds advance by the original step each time they fire:
  // "after every 50 MB of new data" instead of "once at 50 MB" (Fig. 14's
  // replication trigger).
  bool sliding = false;
};

enum class EventKind { kAction, kTimer, kThreshold };

struct EventDef {
  EventKind kind = EventKind::kAction;
  ActionEventDef action;
  TimerEventDef timer;
  ThresholdEventDef threshold;
  bool background = false;

  static EventDef on_action(ActionType a, std::string tier_filter = "",
                            std::string tag_filter = "") {
    EventDef e;
    e.kind = EventKind::kAction;
    e.action = {a, std::move(tier_filter), std::move(tag_filter)};
    return e;
  }
  static EventDef on_insert(std::string tier_filter = "",
                            std::string tag_filter = "") {
    return on_action(ActionType::kInsert, std::move(tier_filter),
                     std::move(tag_filter));
  }
  static EventDef on_timer(Duration period) {
    EventDef e;
    e.kind = EventKind::kTimer;
    e.timer = {period};
    e.background = true;  // timers are serviced off the request path
    return e;
  }
  static EventDef on_threshold(std::string tier, TierAttribute attribute,
                               double threshold, bool sliding = false) {
    EventDef e;
    e.kind = EventKind::kThreshold;
    e.threshold = {std::move(tier), attribute, threshold, sliding};
    return e;
  }
  // Fires when the named SLO flips to violated (`slo.get_p99 == violated`);
  // re-arms when it recovers, like any other threshold event.
  static EventDef on_slo(std::string slo_name) {
    return on_threshold(std::move(slo_name), TierAttribute::kSloViolated,
                        1.0);
  }

  EventDef& in_background() {
    background = true;
    return *this;
  }

  std::string describe() const;
};

}  // namespace tiera
