// Object metadata, exactly the attribute set the paper tracks (§2.1):
// size, access frequency, dirty flag, location (which tiers), time of last
// access — plus tags, which add structure to the object namespace and let
// one policy govern an object class.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"

namespace tiera {

struct ObjectMeta {
  std::string id;
  std::uint64_t size = 0;
  std::uint64_t access_count = 0;
  bool dirty = false;
  std::set<std::string> locations;  // tier labels currently holding the bytes
  TimePoint last_access{};
  TimePoint created{};
  std::set<std::string> tags;

  // At-rest transforms applied by policy responses. GET undoes them
  // transparently so clients always see the bytes they stored.
  bool compressed = false;
  bool encrypted = false;

  // Content hash assigned by storeOnce; non-empty means the bytes live under
  // a content-addressed storage key shared with any duplicate objects.
  std::string content_hash;

  bool in_tier(std::string_view tier) const {
    return locations.count(std::string(tier)) > 0;
  }
  bool has_tag(std::string_view tag) const {
    return tags.count(std::string(tag)) > 0;
  }

  // Storage key under which this object's bytes live in tiers.
  std::string storage_key() const {
    return content_hash.empty() ? id : "cas:" + content_hash;
  }

  // Serialization for the metadb-backed persistence of the metadata layer.
  Bytes encode() const;
  static Result<ObjectMeta> decode(ByteView data);
};

}  // namespace tiera
