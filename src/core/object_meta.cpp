#include "core/object_meta.h"

#include <cstring>

namespace tiera {

namespace {

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_str(Bytes& out, std::string_view s) {
  put_u64(out, s.size());
  append(out, s);
}

void put_set(Bytes& out, const std::set<std::string>& set) {
  put_u64(out, set.size());
  for (const auto& s : set) put_str(out, s);
}

struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  bool u64(std::uint64_t& v) {
    if (end - p < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
    p += 8;
    return true;
  }
  bool str(std::string& s) {
    std::uint64_t n;
    if (!u64(n) || n > static_cast<std::uint64_t>(end - p)) return false;
    s.assign(reinterpret_cast<const char*>(p), n);
    p += n;
    return true;
  }
  bool set(std::set<std::string>& out) {
    std::uint64_t n;
    if (!u64(n) || n > 1u << 20) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string s;
      if (!str(s)) return false;
      out.insert(std::move(s));
    }
    return true;
  }
};

}  // namespace

Bytes ObjectMeta::encode() const {
  Bytes out;
  put_str(out, id);
  put_u64(out, size);
  put_u64(out, access_count);
  put_u64(out, dirty ? 1 : 0);
  put_set(out, locations);
  put_u64(out, static_cast<std::uint64_t>(
                   last_access.time_since_epoch().count()));
  put_u64(out,
          static_cast<std::uint64_t>(created.time_since_epoch().count()));
  put_set(out, tags);
  put_u64(out, (compressed ? 1u : 0u) | (encrypted ? 2u : 0u));
  put_str(out, content_hash);
  return out;
}

Result<ObjectMeta> ObjectMeta::decode(ByteView data) {
  Reader r{data.data(), data.data() + data.size()};
  ObjectMeta m;
  std::uint64_t dirty_flag = 0, access_ns = 0, created_ns = 0, flags = 0;
  if (!r.str(m.id) || !r.u64(m.size) || !r.u64(m.access_count) ||
      !r.u64(dirty_flag) || !r.set(m.locations) || !r.u64(access_ns) ||
      !r.u64(created_ns) || !r.set(m.tags) || !r.u64(flags) ||
      !r.str(m.content_hash)) {
    return Status::Corruption("bad object metadata record");
  }
  m.dirty = dirty_flag != 0;
  m.last_access = TimePoint(Duration(static_cast<std::int64_t>(access_ns)));
  m.created = TimePoint(Duration(static_cast<std::int64_t>(created_ns)));
  m.compressed = (flags & 1) != 0;
  m.encrypted = (flags & 2) != 0;
  return m;
}

}  // namespace tiera
