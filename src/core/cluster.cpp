#include "core/cluster.h"

#include "common/hash.h"
#include "common/logging.h"

namespace tiera {

TieraCluster::TieraCluster(std::size_t vnodes_per_node)
    : vnodes_(vnodes_per_node ? vnodes_per_node : 1) {}

std::uint64_t TieraCluster::ring_hash(std::string_view key) {
  return mix64(fnv1a64(key));
}

TieraCluster::Node* TieraCluster::node_for_locked(std::string_view id) const {
  if (ring_.empty()) return nullptr;
  auto it = ring_.lower_bound(ring_hash(id));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

Status TieraCluster::add_node(std::string name, InstancePtr instance) {
  if (!instance) return Status::InvalidArgument("null instance");
  std::unique_lock lock(mu_);
  for (const auto& node : nodes_) {
    if (node->name == name) return Status::AlreadyExists("node " + name);
  }
  auto node = std::make_unique<Node>();
  node->name = std::move(name);
  node->instance = std::move(instance);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    ring_[ring_hash(node->name + "#" + std::to_string(v))] = node.get();
  }
  nodes_.push_back(std::move(node));
  // Objects on existing nodes whose ownership moved to the new node.
  return migrate_locked();
}

Status TieraCluster::remove_node(std::string_view name) {
  std::unique_lock lock(mu_);
  auto it = std::find_if(nodes_.begin(), nodes_.end(), [&](const auto& node) {
    return node->name == name;
  });
  if (it == nodes_.end()) return Status::NotFound("no such node");
  if (nodes_.size() == 1) {
    return Status::InvalidArgument("cannot remove the last node");
  }
  // Take the node off the ring first so migration routes around it, but
  // keep the instance alive as the migration source.
  std::unique_ptr<Node> leaving = std::move(*it);
  nodes_.erase(it);
  for (auto ring_it = ring_.begin(); ring_it != ring_.end();) {
    if (ring_it->second == leaving.get()) {
      ring_it = ring_.erase(ring_it);
    } else {
      ++ring_it;
    }
  }
  // Drain the leaving node to the survivors.
  std::uint64_t moved = 0;
  Status last = Status::Ok();
  std::vector<std::string> ids;
  leaving->instance->metadata().for_each(
      [&](const ObjectMeta& meta) { ids.push_back(meta.id); });
  for (const auto& id : ids) {
    Node* target = node_for_locked(id);
    if (!target) continue;
    auto bytes = leaving->instance->get(id);
    if (!bytes.ok()) {
      last = bytes.status();
      continue;
    }
    const auto meta = leaving->instance->stat(id);
    const std::vector<std::string> tags =
        meta.ok() ? std::vector<std::string>(meta->tags.begin(),
                                             meta->tags.end())
                  : std::vector<std::string>{};
    const Status s = target->instance->put(id, as_view(*bytes), tags);
    if (!s.ok()) {
      last = s;
      continue;
    }
    ++moved;
  }
  last_migration_ = moved;
  TIERA_LOG(kInfo, "cluster") << "drained " << moved << " objects from node "
                              << leaving->name;
  return last;
}

Status TieraCluster::migrate_locked() {
  std::uint64_t moved = 0;
  Status last = Status::Ok();
  for (const auto& node : nodes_) {
    std::vector<std::string> ids;
    node->instance->metadata().for_each(
        [&](const ObjectMeta& meta) { ids.push_back(meta.id); });
    for (const auto& id : ids) {
      Node* owner = node_for_locked(id);
      if (!owner || owner == node.get()) continue;
      auto bytes = node->instance->get(id);
      if (!bytes.ok()) {
        last = bytes.status();
        continue;
      }
      const auto meta = node->instance->stat(id);
      const std::vector<std::string> tags =
          meta.ok() ? std::vector<std::string>(meta->tags.begin(),
                                               meta->tags.end())
                    : std::vector<std::string>{};
      Status s = owner->instance->put(id, as_view(*bytes), tags);
      if (!s.ok()) {
        last = s;
        continue;
      }
      s = node->instance->remove(id);
      if (!s.ok()) last = s;
      ++moved;
    }
  }
  last_migration_ = moved;
  if (moved > 0) {
    TIERA_LOG(kInfo, "cluster") << "rebalanced " << moved << " objects";
  }
  return last;
}

std::size_t TieraCluster::node_count() const {
  std::shared_lock lock(mu_);
  return nodes_.size();
}

std::vector<std::string> TieraCluster::node_names() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& node : nodes_) names.push_back(node->name);
  return names;
}

Status TieraCluster::put(std::string_view id, ByteView data,
                         const std::vector<std::string>& tags) {
  std::shared_lock lock(mu_);
  Node* node = node_for_locked(id);
  if (!node) return Status::Unavailable("cluster has no nodes");
  return node->instance->put(id, data, tags);
}

Result<Bytes> TieraCluster::get(std::string_view id) {
  std::shared_lock lock(mu_);
  Node* node = node_for_locked(id);
  if (!node) return Status::Unavailable("cluster has no nodes");
  return node->instance->get(id);
}

Status TieraCluster::remove(std::string_view id) {
  std::shared_lock lock(mu_);
  Node* node = node_for_locked(id);
  if (!node) return Status::Unavailable("cluster has no nodes");
  return node->instance->remove(id);
}

bool TieraCluster::contains(std::string_view id) const {
  std::shared_lock lock(mu_);
  Node* node = node_for_locked(id);
  return node && node->instance->contains(id);
}

Result<ObjectMeta> TieraCluster::stat(std::string_view id) const {
  std::shared_lock lock(mu_);
  Node* node = node_for_locked(id);
  if (!node) return Status::Unavailable("cluster has no nodes");
  return node->instance->stat(id);
}

Result<std::string> TieraCluster::owner_of(std::string_view id) const {
  std::shared_lock lock(mu_);
  Node* node = node_for_locked(id);
  if (!node) return Status::Unavailable("cluster has no nodes");
  return node->name;
}

std::size_t TieraCluster::object_count() const {
  std::shared_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& node : nodes_) total += node->instance->object_count();
  return total;
}

double TieraCluster::monthly_cost(double observed_seconds) const {
  std::shared_lock lock(mu_);
  double total = 0;
  for (const auto& node : nodes_) {
    total += node->instance->monthly_cost(observed_seconds);
  }
  return total;
}

}  // namespace tiera
