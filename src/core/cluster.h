// TieraCluster: horizontally scaled control layer (the paper's §6 future
// work: "we plan to employ horizontal scaling to scale the Tiera control
// layer to be able to store a very large number of objects", citing
// Dynamo/Cassandra-style designs).
//
// A cluster shards the object namespace across several TieraInstances with
// a consistent-hash ring (virtual nodes), routing PUT/GET/DELETE to the
// owning instance. Nodes can be added or removed at runtime; the cluster
// migrates the objects whose ownership changed, through each instance's
// normal data path, while the rest keep serving.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/instance.h"

namespace tiera {

class TieraCluster {
 public:
  // Virtual nodes per instance on the hash ring; more = smoother balance.
  explicit TieraCluster(std::size_t vnodes_per_node = 64);

  // Nodes are owned by the cluster. `name` identifies the node for
  // removal and diagnostics.
  Status add_node(std::string name, InstancePtr instance);
  // Removing a node migrates its objects to their new owners first.
  Status remove_node(std::string_view name);

  std::size_t node_count() const;
  std::vector<std::string> node_names() const;

  // --- Routed application interface -----------------------------------------
  Status put(std::string_view id, ByteView data,
             const std::vector<std::string>& tags = {});
  Result<Bytes> get(std::string_view id);
  Status remove(std::string_view id);
  bool contains(std::string_view id) const;
  Result<ObjectMeta> stat(std::string_view id) const;

  // Name of the node that owns `id` under the current ring.
  Result<std::string> owner_of(std::string_view id) const;

  // Total objects across all nodes.
  std::size_t object_count() const;
  double monthly_cost(double observed_seconds = 0) const;

  // Objects moved by the last add/remove rebalance.
  std::uint64_t last_migration_count() const { return last_migration_; }

 private:
  struct Node {
    std::string name;
    InstancePtr instance;
  };

  // Requires lock held (shared is fine): owning node for a key, or null.
  Node* node_for_locked(std::string_view id) const;
  static std::uint64_t ring_hash(std::string_view key);

  // Move every object whose owner changed to its new owner. Requires
  // exclusive lock held by the caller; releases nothing.
  Status migrate_locked();

  const std::size_t vnodes_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::uint64_t, Node*> ring_;
  std::uint64_t last_migration_ = 0;
};

}  // namespace tiera
