// MetadataStore: the control layer's view of every object.
//
// Mirrors the prototype's BerkeleyDB-backed metadata layer: a sharded
// in-memory map for the hot path plus optional metadb persistence so an
// instance restart recovers object locations. Also maintains:
//   * a per-tier recency list giving O(1) `tierX.oldest` / `tierX.newest`
//     (the selectors behind the paper's LRU/MRU policies, Fig. 5), and
//   * a content-hash reference-count table backing the storeOnce dedup
//     response (Fig. 12).
#pragma once

#include <array>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/object_meta.h"
#include "metadb/metadb.h"

namespace tiera {

class MetadataStore {
 public:
  // `db` may be null (purely in-memory metadata, used by most benches).
  explicit MetadataStore(std::unique_ptr<MetaDb> db = nullptr);

  // Attach persistence after construction (instance init path).
  void attach_db(std::unique_ptr<MetaDb> db) { db_ = std::move(db); }

  // Loads persisted metadata (no-op without a db). Call once before use.
  Status recover();

  // --- Object records --------------------------------------------------------
  std::optional<ObjectMeta> get(std::string_view id) const;
  bool contains(std::string_view id) const;

  // Insert or overwrite the full record.
  Status put(const ObjectMeta& meta);

  // Read-modify-write under the shard lock; returns NotFound when absent.
  // `fn` returning false aborts without writing.
  Status update(std::string_view id,
                const std::function<bool(ObjectMeta&)>& fn);

  Status erase(std::string_view id);

  std::size_t size() const;

  // Snapshot scan (copies records out; cheap at middleware scales).
  void for_each(const std::function<void(const ObjectMeta&)>& fn) const;

  // All ids matching a predicate.
  std::vector<std::string> select(
      const std::function<bool(const ObjectMeta&)>& pred) const;

  // --- Per-tier recency (LRU/MRU selectors) ---------------------------------
  // Record that `id` was inserted into or accessed in `tier` (moves to the
  // most-recent end).
  void touch_in_tier(std::string_view tier, std::string_view id);
  void remove_from_tier(std::string_view tier, std::string_view id);
  void drop_tier(std::string_view tier);

  // `excluding` skips one id (eviction policies must never pick the object
  // whose insertion triggered them — its stale copy may top the LRU list).
  std::optional<std::string> oldest_in_tier(
      std::string_view tier, std::string_view excluding = {}) const;
  std::optional<std::string> newest_in_tier(
      std::string_view tier, std::string_view excluding = {}) const;
  std::size_t count_in_tier(std::string_view tier) const;

  // --- storeOnce content index ----------------------------------------------
  // Registers a reference to `hash` from object `id`. Returns true when this
  // is the first reference (the caller must store the bytes).
  bool add_content_ref(std::string_view hash, std::string_view id);
  // Drops a reference; returns true when it was the last one (the caller
  // should delete the content-addressed bytes).
  bool drop_content_ref(std::string_view hash, std::string_view id);
  std::size_t content_ref_count(std::string_view hash) const;
  std::vector<std::string> content_ref_ids(std::string_view hash) const;

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, ObjectMeta> map;
  };
  Shard& shard_for(std::string_view id);
  const Shard& shard_for(std::string_view id) const;

  Status persist(const ObjectMeta& meta);
  Status unpersist(std::string_view id);

  std::array<Shard, kShards> shards_;

  struct TierLru {
    std::list<std::string> order;  // front = newest
    std::unordered_map<std::string, std::list<std::string>::iterator> pos;
  };
  mutable std::mutex lru_mu_;
  std::unordered_map<std::string, TierLru> tier_lru_;

  mutable std::mutex content_mu_;
  std::unordered_map<std::string, std::set<std::string>> content_refs_;

  std::unique_ptr<MetaDb> db_;
};

}  // namespace tiera
