#include "sql/minidb.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"

namespace tiera {

namespace {
constexpr std::string_view kCatalogFile = "minidb.catalog";
constexpr std::string_view kJournalFile = "minidb.journal";
constexpr std::uint8_t kPresent = 1;
constexpr std::uint8_t kAbsent = 0;

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}
void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}
}  // namespace

// --- BufferPool --------------------------------------------------------------

BufferPool::BufferPool(FileAdapter& files, std::size_t page_size,
                       std::size_t capacity)
    : files_(files), page_size_(page_size), capacity_(capacity) {}

std::pair<std::string, std::uint64_t> BufferPool::split_key(
    const SlotKey& key) {
  const auto at = key.rfind('@');
  return {key.substr(0, at), std::stoull(key.substr(at + 1))};
}

Status BufferPool::with_page(const std::string& file,
                             std::uint64_t page_index,
                             const std::function<void(Bytes&, bool&)>& fn) {
  const SlotKey key = file + "@" + std::to_string(page_index);
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard lock(map_mu_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      slot = it->second;
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot = std::make_shared<Slot>();
      slots_.emplace(key, slot);
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
    }
    slot->pins.fetch_add(1);
    // LRU bookkeeping.
    auto pos = lru_pos_.find(key);
    if (pos != lru_pos_.end()) {
      lru_.splice(lru_.begin(), lru_, pos->second);
    } else {
      lru_.push_front(key);
      lru_pos_[key] = lru_.begin();
    }
  }

  Status status = Status::Ok();
  {
    std::lock_guard slot_lock(slot->mu);
    if (!slot->loaded) {
      Result<Bytes> data = files_.read(file, page_index * page_size_,
                                       page_size_);
      if (!data.ok()) {
        slot->pins.fetch_sub(1);
        return data.status();
      }
      slot->data = std::move(data).value();
      slot->data.resize(page_size_, 0);
      slot->loaded = true;
    }
    bool dirty = false;
    fn(slot->data, dirty);
    if (dirty) slot->dirty = true;
  }
  slot->pins.fetch_sub(1);
  maybe_evict();
  return status;
}

Status BufferPool::flush_slot(const SlotKey& key, Slot& slot) {
  if (!slot.dirty) return Status::Ok();
  const auto [file, page_index] = split_key(key);
  TIERA_RETURN_IF_ERROR(
      files_.write(file, page_index * page_size_, as_view(slot.data)));
  slot.dirty = false;
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void BufferPool::maybe_evict() {
  for (;;) {
    std::shared_ptr<Slot> victim;
    SlotKey victim_key;
    {
      std::lock_guard lock(map_mu_);
      if (slots_.size() <= capacity_) return;
      // Scan from the cold end for an unpinned victim.
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        auto found = slots_.find(*it);
        if (found == slots_.end()) continue;
        if (found->second->pins.load() > 0) continue;
        victim_key = *it;
        victim = found->second;
        slots_.erase(found);
        lru_.erase(lru_pos_[victim_key]);
        lru_pos_.erase(victim_key);
        break;
      }
      if (!victim) return;  // everything pinned; try again later
    }
    {
      std::lock_guard slot_lock(victim->mu);
      (void)flush_slot(victim_key, *victim);
    }
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

Status BufferPool::flush_all() {
  std::vector<std::pair<SlotKey, std::shared_ptr<Slot>>> snapshot;
  {
    std::lock_guard lock(map_mu_);
    snapshot.assign(slots_.begin(), slots_.end());
  }
  Status last = Status::Ok();
  for (auto& [key, slot] : snapshot) {
    std::lock_guard slot_lock(slot->mu);
    const Status s = flush_slot(key, *slot);
    if (!s.ok()) last = s;
  }
  return last;
}

void BufferPool::drop_all() {
  std::lock_guard lock(map_mu_);
  slots_.clear();
  lru_.clear();
  lru_pos_.clear();
}

std::size_t BufferPool::cached_pages() const {
  std::lock_guard lock(map_mu_);
  return slots_.size();
}

// --- MiniDb ------------------------------------------------------------------

MiniDb::MiniDb(FileAdapter& files, MiniDbOptions options)
    : files_(files),
      options_(options),
      pool_(files, options.page_size,
            options.memory_engine ? std::size_t{1} << 20
                                  : options.buffer_pool_pages) {}

Status MiniDb::open() {
  TIERA_RETURN_IF_ERROR(load_catalog());
  if (options_.use_wal && !options_.memory_engine) {
    if (!files_.exists(std::string(kJournalFile))) {
      TIERA_RETURN_IF_ERROR(files_.create(std::string(kJournalFile)));
    }
    TIERA_RETURN_IF_ERROR(replay_journal());
  }
  opened_ = true;
  return Status::Ok();
}

Status MiniDb::load_catalog() {
  if (!files_.exists(std::string(kCatalogFile))) return Status::Ok();
  Result<Bytes> raw = files_.read_all(std::string(kCatalogFile));
  if (!raw.ok()) return raw.status();
  std::istringstream in(to_string(as_view(*raw)));
  std::string name;
  std::uint32_t record_size;
  std::lock_guard lock(catalog_mu_);
  while (in >> name >> record_size) {
    auto info = std::make_unique<TableInfo>();
    info->name = name;
    info->record_size = record_size;
    info->slot_size = record_size + 1;
    info->records_per_page =
        static_cast<std::uint32_t>(options_.page_size) / info->slot_size;
    info->file = "table." + name;
    auto size = files_.size(info->file);
    if (size.ok()) {
      const std::uint64_t pages = *size / options_.page_size;
      info->max_row.store(pages * info->records_per_page);
    }
    tables_[name] = std::move(info);
  }
  return Status::Ok();
}

Status MiniDb::persist_catalog() {
  std::ostringstream out;
  for (const auto& [name, info] : tables_) {
    out << name << " " << info->record_size << "\n";
  }
  if (!files_.exists(std::string(kCatalogFile))) {
    TIERA_RETURN_IF_ERROR(files_.create(std::string(kCatalogFile)));
  }
  const std::string text = out.str();
  TIERA_RETURN_IF_ERROR(files_.truncate(std::string(kCatalogFile), 0));
  return files_.write(std::string(kCatalogFile), 0, as_view(text));
}

Status MiniDb::create_table(const std::string& name,
                            std::uint32_t record_size) {
  if (record_size == 0 || record_size + 1 > options_.page_size) {
    return Status::InvalidArgument("bad record size");
  }
  std::lock_guard lock(catalog_mu_);
  if (tables_.count(name)) return Status::AlreadyExists("table " + name);
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->record_size = record_size;
  info->slot_size = record_size + 1;
  info->records_per_page =
      static_cast<std::uint32_t>(options_.page_size) / info->slot_size;
  info->file = "table." + name;
  if (!files_.exists(info->file)) {
    TIERA_RETURN_IF_ERROR(files_.create(info->file));
  }
  tables_[name] = std::move(info);
  return persist_catalog();
}

bool MiniDb::has_table(const std::string& name) const {
  std::lock_guard lock(catalog_mu_);
  return tables_.count(name) > 0;
}

Result<MiniDb::TableInfo*> MiniDb::table(const std::string& name) const {
  std::lock_guard lock(catalog_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return it->second.get();
}

Result<std::uint64_t> MiniDb::row_count(const std::string& name) const {
  Result<TableInfo*> info = table(name);
  if (!info.ok()) return info.status();
  return (*info)->max_row.load();
}

std::mutex& MiniDb::row_lock(const std::string& table, std::uint64_t row) {
  const std::uint64_t h = fnv1a64(table) ^ mix64(row);
  return row_locks_[h % kLockStripes];
}

Status MiniDb::read_record(const TableInfo& info, std::uint64_t row,
                           Bytes& out, bool& present) {
  const std::uint64_t page = row / info.records_per_page;
  const std::size_t slot = (row % info.records_per_page) * info.slot_size;
  present = false;
  return pool_.with_page(info.file, page, [&](Bytes& data, bool&) {
    if (slot + info.slot_size > data.size()) return;
    if (data[slot] != kPresent) return;
    present = true;
    out.assign(data.begin() + static_cast<long>(slot) + 1,
               data.begin() + static_cast<long>(slot) + 1 + info.record_size);
  });
}

Status MiniDb::apply_write(const Transaction::StagedWrite& write) {
  Result<TableInfo*> info_result = table(write.table);
  if (!info_result.ok()) return info_result.status();
  TableInfo& info = **info_result;
  if (!write.tombstone && write.data.size() != info.record_size) {
    return Status::InvalidArgument("record size mismatch for " + write.table);
  }
  const std::uint64_t page = write.row / info.records_per_page;
  const std::size_t slot =
      (write.row % info.records_per_page) * info.slot_size;
  TIERA_RETURN_IF_ERROR(
      pool_.with_page(info.file, page, [&](Bytes& data, bool& dirty) {
        if (data.size() < options_.page_size) {
          data.resize(options_.page_size, 0);
        }
        if (write.tombstone) {
          data[slot] = kAbsent;
        } else {
          data[slot] = kPresent;
          std::memcpy(data.data() + slot + 1, write.data.data(),
                      write.data.size());
        }
        dirty = true;
      }));
  // Track the logical end of the table.
  std::uint64_t current = info.max_row.load();
  while (write.row + 1 > current &&
         !info.max_row.compare_exchange_weak(current, write.row + 1)) {
  }
  return Status::Ok();
}

// Journal record: u32 len | u32 crc | u32 nwrites | writes...
// write: u16 name_len | name | u64 row | u8 tombstone | u32 len | bytes
Status MiniDb::append_journal(
    const std::vector<Transaction::StagedWrite>& writes) {
  Bytes body;
  put_u32(body, static_cast<std::uint32_t>(writes.size()));
  for (const auto& write : writes) {
    body.push_back(std::uint8_t(write.table.size() & 0xFF));
    body.push_back(std::uint8_t((write.table.size() >> 8) & 0xFF));
    append(body, write.table);
    put_u64(body, write.row);
    body.push_back(write.tombstone ? 1 : 0);
    put_u32(body, static_cast<std::uint32_t>(write.data.size()));
    append(body, as_view(write.data));
  }
  Bytes record;
  put_u32(record, static_cast<std::uint32_t>(body.size()));
  put_u32(record, crc32c(as_view(body)));
  append(record, as_view(body));

  // Group commit: batch with any concurrent committers; one leader appends
  // the whole batch to the journal file.
  std::unique_lock lock(journal_mu_);
  append(journal_pending_, as_view(record));
  // If a flush is in flight it does NOT include this record (the leader
  // swapped the buffer before releasing the lock): wait one flush further.
  const std::uint64_t my_target =
      journal_flush_count_ + (journal_flushing_ ? 2 : 1);
  Status status = Status::Ok();
  if (!journal_flushing_) {
    journal_flushing_ = true;
    while (!journal_pending_.empty()) {
      Bytes batch;
      batch.swap(journal_pending_);
      lock.unlock();
      Result<std::uint64_t> at =
          files_.append(std::string(kJournalFile), as_view(batch));
      lock.lock();
      ++journal_flush_count_;
      if (!at.ok()) status = at.status();
      journal_cv_.notify_all();
    }
    journal_flushing_ = false;
    journal_cv_.notify_all();
  } else {
    journal_cv_.wait(lock,
                     [&] { return journal_flush_count_ >= my_target; });
  }
  if (status.ok()) {
    journal_commits_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status MiniDb::replay_journal() {
  Result<Bytes> raw = files_.read_all(std::string(kJournalFile));
  if (!raw.ok()) return raw.status();
  const Bytes& log = *raw;
  std::size_t pos = 0;
  std::size_t replayed = 0;
  while (pos + 8 <= log.size()) {
    const std::uint32_t len = get_u32(log.data() + pos);
    const std::uint32_t crc = get_u32(log.data() + pos + 4);
    if (pos + 8 + len > log.size()) break;  // torn tail
    const ByteView body(log.data() + pos + 8, len);
    if (crc32c(body) != crc) break;
    // Decode and apply.
    const std::uint8_t* p = body.data();
    const std::uint8_t* end = body.data() + body.size();
    if (end - p < 4) break;
    const std::uint32_t nwrites = get_u32(p);
    p += 4;
    bool ok = true;
    for (std::uint32_t i = 0; i < nwrites && ok; ++i) {
      if (end - p < 2) { ok = false; break; }
      const std::size_t name_len = p[0] | (std::size_t(p[1]) << 8);
      p += 2;
      if (static_cast<std::size_t>(end - p) < name_len + 13) {
        ok = false;
        break;
      }
      Transaction::StagedWrite write;
      write.table.assign(reinterpret_cast<const char*>(p), name_len);
      p += name_len;
      write.row = get_u64(p);
      p += 8;
      write.tombstone = *p++ != 0;
      const std::uint32_t data_len = get_u32(p);
      p += 4;
      if (static_cast<std::size_t>(end - p) < data_len) {
        ok = false;
        break;
      }
      write.data.assign(p, p + data_len);
      p += data_len;
      (void)apply_write(write);
    }
    if (!ok) break;
    pos += 8 + len;
    ++replayed;
  }
  if (replayed > 0) {
    TIERA_LOG(kInfo, "minidb") << "replayed " << replayed
                               << " journal records";
    TIERA_RETURN_IF_ERROR(pool_.flush_all());
  }
  return files_.truncate(std::string(kJournalFile), 0);
}

MiniDb::Transaction MiniDb::begin() { return Transaction(*this); }

Result<Bytes> MiniDb::Transaction::read(const std::string& table,
                                        std::uint64_t row) {
  // Read-your-writes within the transaction.
  for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
    if (it->table == table && it->row == row) {
      if (it->tombstone) return Status::NotFound("row deleted in txn");
      return it->data;
    }
  }
  Result<TableInfo*> info = db_.table(table);
  if (!info.ok()) return info.status();
  std::shared_lock table_shared(db_.table_lock_, std::defer_lock);
  if (db_.options_.memory_engine) table_shared.lock();
  Bytes out;
  bool present = false;
  TIERA_RETURN_IF_ERROR(db_.read_record(**info, row, out, present));
  if (!present) return Status::NotFound("no row");
  return out;
}

Result<std::vector<Bytes>> MiniDb::Transaction::range_read(
    const std::string& table, std::uint64_t first, std::size_t count) {
  std::vector<Bytes> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Result<Bytes> row = read(table, first + i);
    if (row.ok()) {
      out.push_back(std::move(row).value());
    } else if (!row.status().is_not_found()) {
      return row.status();
    }
  }
  return out;
}

Status MiniDb::Transaction::write(const std::string& table, std::uint64_t row,
                                  ByteView data) {
  writes_.push_back(
      {table, row, Bytes(data.begin(), data.end()), /*tombstone=*/false});
  return Status::Ok();
}

Status MiniDb::Transaction::remove(const std::string& table,
                                   std::uint64_t row) {
  writes_.push_back({table, row, {}, /*tombstone=*/true});
  return Status::Ok();
}

Status MiniDb::commit(Transaction& txn) {
  if (txn.writes_.empty()) return Status::Ok();

  if (options_.memory_engine) {
    // Table-level lock + modelled maintenance cost: the Memory Engine
    // behaviour that collapses transactional throughput in the paper.
    std::unique_lock table_lock(table_lock_);
    apply_model_delay(options_.memory_engine_write_penalty);
    for (const auto& write : txn.writes_) {
      TIERA_RETURN_IF_ERROR(apply_write(write));
    }
    txn.writes_.clear();
    return Status::Ok();
  }

  // Deadlock-free row locking: sort the stripe set, lock in order.
  std::vector<std::mutex*> locks;
  locks.reserve(txn.writes_.size());
  for (const auto& write : txn.writes_) {
    locks.push_back(&row_lock(write.table, write.row));
  }
  std::sort(locks.begin(), locks.end());
  locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
  for (auto* lock : locks) lock->lock();

  Status status = Status::Ok();
  if (options_.use_wal) {
    status = append_journal(txn.writes_);
  }
  if (status.ok()) {
    for (const auto& write : txn.writes_) {
      const Status s = apply_write(write);
      if (!s.ok()) status = s;
    }
  }
  for (auto it = locks.rbegin(); it != locks.rend(); ++it) (*it)->unlock();
  txn.writes_.clear();
  return status;
}

void MiniDb::abort(Transaction& txn) { txn.writes_.clear(); }

Result<Bytes> MiniDb::read_row(const std::string& table, std::uint64_t row) {
  Transaction txn = begin();
  return txn.read(table, row);
}

Status MiniDb::write_row(const std::string& table, std::uint64_t row,
                         ByteView data) {
  Transaction txn = begin();
  TIERA_RETURN_IF_ERROR(txn.write(table, row, data));
  return commit(txn);
}

Status MiniDb::journal_note(ByteView payload) {
  if (!options_.use_wal || options_.memory_engine) return Status::Ok();
  std::vector<Transaction::StagedWrite> writes(1);
  writes[0].table = "__journal_note";
  writes[0].row = 0;
  writes[0].data.assign(payload.begin(), payload.end());
  writes[0].tombstone = true;  // replay treats it as a no-op tombstone
  return append_journal(writes);
}

Status MiniDb::checkpoint() {
  TIERA_RETURN_IF_ERROR(pool_.flush_all());
  if (options_.use_wal && !options_.memory_engine) {
    std::lock_guard lock(journal_mu_);
    return files_.truncate(std::string(kJournalFile), 0);
  }
  return Status::Ok();
}

}  // namespace tiera
