// minidb: a small paged database engine, the stand-in for unmodified MySQL.
//
// What matters for reproducing the paper's experiments is the I/O pattern a
// database pushes through the storage stack, and minidb generates the same
// pattern InnoDB does at the granularity that Tiera sees:
//   * fixed-size pages read/written through the POSIX layer (FileAdapter
//     splits them into 4 KB Tiera objects, as the paper's FUSE layer does),
//   * an LRU buffer pool so only misses touch storage,
//   * a write-ahead journal appended and persisted on every read-write
//     commit — the writes that gate the paper's MemcachedEBS results even
//     for "read-only" transactional workloads (§4.1.1),
//   * row-level commit locking for the standard engine.
//
// A "memory engine" mode reproduces MySQL's Memory Engine semantics: no
// journal, no transactions, table-level locking — the configuration whose
// transactional throughput collapses (~0.15 TPS in the paper).
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "posix/file_adapter.h"

namespace tiera {

struct MiniDbOptions {
  std::size_t page_size = 4096;
  std::size_t buffer_pool_pages = 256;
  bool use_wal = true;
  // MySQL Memory Engine emulation: table-level locks, no WAL, and a
  // modelled per-write-commit maintenance cost (the engine rewrites its
  // index structures under the table lock).
  bool memory_engine = false;
  Duration memory_engine_write_penalty = from_ms(400);
};

struct BufferPoolStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> flushes{0};
  double hit_rate() const {
    const double total =
        static_cast<double>(hits.load()) + static_cast<double>(misses.load());
    return total > 0 ? static_cast<double>(hits.load()) / total : 0.0;
  }
};

// Page cache shared by all tables of one MiniDb.
class BufferPool {
 public:
  BufferPool(FileAdapter& files, std::size_t page_size, std::size_t capacity);

  // Run `fn` with the page bytes latched; `fn` may modify them and must set
  // `dirty` when it does. Missing pages materialise as zero-filled.
  Status with_page(const std::string& file, std::uint64_t page_index,
                   const std::function<void(Bytes&, bool&)>& fn);

  // Write every dirty page back through the file adapter.
  Status flush_all();
  // Drop all cached pages without flushing (crash simulation in tests).
  void drop_all();

  const BufferPoolStats& stats() const { return stats_; }
  std::size_t cached_pages() const;

 private:
  struct Slot {
    std::mutex mu;
    Bytes data;
    bool loaded = false;
    bool dirty = false;
    std::atomic<int> pins{0};
  };
  using SlotKey = std::string;  // "<file>@<page>"

  Status flush_slot(const SlotKey& key, Slot& slot);
  void maybe_evict();
  static std::pair<std::string, std::uint64_t> split_key(const SlotKey& key);

  FileAdapter& files_;
  const std::size_t page_size_;
  const std::size_t capacity_;

  mutable std::mutex map_mu_;
  std::unordered_map<SlotKey, std::shared_ptr<Slot>> slots_;
  std::list<SlotKey> lru_;  // front = most recent
  std::unordered_map<SlotKey, std::list<SlotKey>::iterator> lru_pos_;

  mutable BufferPoolStats stats_;
};

class MiniDb {
 public:
  MiniDb(FileAdapter& files, MiniDbOptions options = {});

  // Open or create; replays any committed work left in the journal.
  Status open();

  Status create_table(const std::string& name, std::uint32_t record_size);
  bool has_table(const std::string& name) const;
  Result<std::uint64_t> row_count(const std::string& table) const;

  // --- Transactions ----------------------------------------------------------
  // Reads observe committed data; writes are staged and applied atomically
  // at commit (row locks taken in sorted order — deadlock free). Read-write
  // commits append one journal record whose persistence cost is paid through
  // the storage stack.
  class Transaction {
   public:
    Result<Bytes> read(const std::string& table, std::uint64_t row);
    // Sequential scan of `count` rows starting at `first`.
    Result<std::vector<Bytes>> range_read(const std::string& table,
                                          std::uint64_t first,
                                          std::size_t count);
    Status write(const std::string& table, std::uint64_t row, ByteView data);
    Status remove(const std::string& table, std::uint64_t row);

    bool read_only() const { return writes_.empty(); }

   private:
    friend class MiniDb;
    explicit Transaction(MiniDb& db) : db_(db) {}

    struct StagedWrite {
      std::string table;
      std::uint64_t row;
      Bytes data;      // empty = delete
      bool tombstone = false;
    };

    MiniDb& db_;
    std::vector<StagedWrite> writes_;
  };

  Transaction begin();
  Status commit(Transaction& txn);
  // Staged writes are simply discarded.
  void abort(Transaction& txn);

  // Convenience autocommit helpers.
  Result<Bytes> read_row(const std::string& table, std::uint64_t row);
  Status write_row(const std::string& table, std::uint64_t row, ByteView data);

  // Append a raw bookkeeping record to the journal. Models engines (like
  // the paper's MySQL) that persist journal writes even under read-only
  // transactional load — the effect that gates the MemcachedEBS read-only
  // results in §4.1.1.
  Status journal_note(ByteView payload);

  // Flush dirty pages (checkpoint) and truncate the journal.
  Status checkpoint();

  const BufferPoolStats& buffer_stats() const { return pool_.stats(); }
  std::uint64_t journal_commits() const { return journal_commits_.load(); }

 private:
  struct TableInfo {
    std::string name;
    std::uint32_t record_size = 0;
    std::uint32_t slot_size = 0;       // record + presence byte
    std::uint32_t records_per_page = 0;
    std::string file;
    std::atomic<std::uint64_t> max_row{0};
  };

  Result<TableInfo*> table(const std::string& name) const;
  Status load_catalog();
  Status persist_catalog();
  Status replay_journal();
  Status append_journal(const std::vector<Transaction::StagedWrite>& writes);
  Status apply_write(const Transaction::StagedWrite& write);
  Status read_record(const TableInfo& info, std::uint64_t row, Bytes& out,
                     bool& present);

  // Striped row locks for commit-time write serialisation.
  std::mutex& row_lock(const std::string& table, std::uint64_t row);

  FileAdapter& files_;
  MiniDbOptions options_;
  BufferPool pool_;

  mutable std::mutex catalog_mu_;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;

  static constexpr std::size_t kLockStripes = 256;
  std::array<std::mutex, kLockStripes> row_locks_;

  // Memory-engine table lock (readers shared, writers exclusive).
  std::shared_mutex table_lock_;

  // Group commit: concurrent commits batch their journal records into one
  // append (the leader flushes for everyone in the batch).
  std::mutex journal_mu_;
  std::condition_variable journal_cv_;
  Bytes journal_pending_;
  std::uint64_t journal_flush_count_ = 0;
  bool journal_flushing_ = false;

  std::atomic<std::uint64_t> journal_commits_{0};
  bool opened_ = false;
};

}  // namespace tiera
