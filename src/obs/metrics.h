// MetricsRegistry: the instance-wide observability surface.
//
// The paper evaluates Tiera entirely through measurements (per-tier hit
// rates, tail latencies, cost counters — Figs. 7-18). This registry gives
// every layer one place to publish those numbers: named counters, gauges,
// and log-bucketed latency histograms, each optionally carrying labels
// (e.g. {tier="m1"}). A process-wide default registry backs the `kStats`
// RPC verb and the `tiera_cli stats` command, which render it in
// Prometheus text-exposition format.
//
// Naming convention: `tiera_<layer>_<name>` with `_total` for counters
// and `_ms` for latency histograms (see DESIGN.md "Observability").
//
// Concurrency: registration takes a registry mutex; the returned metric
// references are stable for the life of the registry, so hot paths look up
// once (at construction) and then mutate relaxed atomics only (histograms
// are lock-free too).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace tiera {

// Tier-level ops finish in a few hundred nanoseconds when latency modelling
// is off, so timing every one of them (two clock reads plus a histogram
// update) would cost more than the op itself. Latency histograms on those
// paths sample 1 op in latency_sample_every(); counters stay exact.
inline constexpr std::uint64_t kLatencySampleEvery = 8;  // default rate

// Effective tier latency sampling rate. First read consults
// TIERA_LATENCY_SAMPLE_N (rounded up to a power of two so hot paths can use
// a mask; 0 disables latency sampling entirely); defaults to
// kLatencySampleEvery. set_latency_sample_every() overrides at runtime —
// benches use 1 to capture unsampled breakdowns. The live value is exported
// as the `tiera_latency_sample_every` gauge.
std::uint64_t latency_sample_every();
void set_latency_sample_every(std::uint64_t n);
// (every - 1) when sampling, i.e. `(counter & mask) == 0` selects the
// sampled op; ~0 when sampling is disabled.
std::uint64_t latency_sample_mask();

// True when an op with this (pre-increment) counter value should be timed.
inline bool latency_sample_hit(std::uint64_t counter) {
  const std::uint64_t every = latency_sample_every();
  return every != 0 && (counter & (every - 1)) == 0;
}

// Monotonic event count (Prometheus "counter").
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value that can move both ways (Prometheus "gauge").
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  // Label set attached to one series of a metric family, e.g.
  // {{"tier", "m1"}}. Order does not matter; series are keyed by the
  // canonical (sorted) rendering.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. References stay valid for the registry's lifetime.
  // Requesting an existing family with a conflicting metric kind logs an
  // error and returns a detached metric (never crashes a serving path).
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  LatencyHistogram& histogram(std::string_view name, const Labels& labels = {});

  // Collectors: pull-model instrumentation for hot paths that already keep
  // their own atomics (TierStats, InstanceStats). Instead of double-counting
  // every op into the registry, the owner registers a collector that
  // delta-syncs its source-of-truth atomics into registry series; collectors
  // run at the start of every render. Owners MUST remove their collector
  // before the state it captures dies.
  using CollectorId = std::uint64_t;
  CollectorId add_collector(std::function<void()> fn);
  void remove_collector(CollectorId id);
  // Runs all collectors; render_prometheus/render_text call this first.
  void collect() const;

  // Prometheus text exposition format, version 0.0.4. Histograms render as
  // summaries (quantile series + _sum/_count).
  std::string render_prometheus() const;
  // Human-readable one-line-per-series rendering for logs and `stats` text.
  std::string render_text() const;

  std::size_t series_count() const;

  // The process-wide default registry all built-in instrumentation uses.
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    // Keyed by the canonical label rendering (`tier="m1"`), so exposition
    // output is deterministic.
    std::map<std::string, Series> series;
  };

  Series& get_or_create(Kind kind, std::string_view name,
                        const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;

  // Collectors are serialized by their own mutex (never held together with
  // mu_, so a collector may safely call counter()/gauge()/histogram()).
  mutable std::mutex collectors_mu_;
  CollectorId next_collector_id_ = 1;
  std::map<CollectorId, std::function<void()>> collectors_;
};

}  // namespace tiera
