#include "obs/slo.h"

#include <algorithm>
#include <cmath>

namespace tiera {

namespace {

// Geometric bucket growth: 256 buckets spanning 1us .. 1e8us (~100s).
constexpr double kRangeUs = 1e8;
const double kLogGrowth = std::log(kRangeUs) / (SloWindowRing::kBucketCount - 1);

// Modelled seconds rendered for the burn-window label ("300s", "3600s").
std::string window_label(Duration d) {
  return std::to_string(
             static_cast<long long>(std::llround(to_seconds(d)))) +
         "s";
}

}  // namespace

std::string_view to_string(SloSignal signal) {
  switch (signal) {
    case SloSignal::kGetP50: return "get_p50";
    case SloSignal::kGetP95: return "get_p95";
    case SloSignal::kGetP99: return "get_p99";
    case SloSignal::kPutP50: return "put_p50";
    case SloSignal::kPutP95: return "put_p95";
    case SloSignal::kPutP99: return "put_p99";
    case SloSignal::kErrorRate: return "error_rate";
  }
  return "?";
}

bool slo_signal_from_name(std::string_view name, SloSignal* out) {
  static constexpr SloSignal kAll[] = {
      SloSignal::kGetP50, SloSignal::kGetP95, SloSignal::kGetP99,
      SloSignal::kPutP50, SloSignal::kPutP95, SloSignal::kPutP99,
      SloSignal::kErrorRate,
  };
  for (const SloSignal s : kAll) {
    if (name == to_string(s)) {
      if (out) *out = s;
      return true;
    }
  }
  return false;
}

double slo_quantile(SloSignal signal) {
  switch (signal) {
    case SloSignal::kGetP50:
    case SloSignal::kPutP50: return 0.50;
    case SloSignal::kGetP95:
    case SloSignal::kPutP95: return 0.95;
    case SloSignal::kGetP99:
    case SloSignal::kPutP99: return 0.99;
    case SloSignal::kErrorRate: return 0;
  }
  return 0;
}

bool slo_is_latency(SloSignal signal) {
  return signal != SloSignal::kErrorRate;
}

bool slo_is_get(SloSignal signal) {
  return signal == SloSignal::kGetP50 || signal == SloSignal::kGetP95 ||
         signal == SloSignal::kGetP99;
}

// --- SloWindowRing -----------------------------------------------------------

SloWindowRing::SloWindowRing(int slices, Duration slice_len)
    : slice_count_(std::max(slices, 1)),
      slice_len_(std::max<Duration>(slice_len, Duration(1))),
      slices_(new Slice[static_cast<std::size_t>(slice_count_)]) {
  for (int i = 0; i < slice_count_; ++i) {
    for (auto& bucket : slices_[i].buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

int SloWindowRing::bucket_for(double latency_ms) {
  const double us = latency_ms * 1000.0;
  if (us <= 1.0) return 0;
  const int b = static_cast<int>(std::log(us) / kLogGrowth) + 1;
  return std::min(b, kBucketCount - 1);
}

double SloWindowRing::bucket_upper_ms(int bucket) {
  return std::exp(bucket * kLogGrowth) / 1000.0;
}

std::int64_t SloWindowRing::epoch_of(TimePoint t) const {
  return t.time_since_epoch().count() / slice_len_.count();
}

SloWindowRing::Slice& SloWindowRing::refresh(std::int64_t epoch) {
  Slice& slice =
      slices_[static_cast<std::size_t>(epoch % slice_count_)];
  std::int64_t seen = slice.epoch.load(std::memory_order_acquire);
  if (seen != epoch) {
    // One writer wins the rotation and zeroes; samples racing the zeroing
    // may be lost (documented sampling loss). Losers fall through and
    // record into the freshly claimed slice.
    if (slice.epoch.compare_exchange_strong(seen, epoch,
                                            std::memory_order_acq_rel)) {
      slice.total.store(0, std::memory_order_relaxed);
      slice.bad.store(0, std::memory_order_relaxed);
      for (auto& bucket : slice.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
  return slice;
}

void SloWindowRing::record(TimePoint t, double latency_ms, bool bad) {
  Slice& slice = refresh(epoch_of(t));
  slice.buckets[bucket_for(latency_ms)].fetch_add(1,
                                                  std::memory_order_relaxed);
  slice.total.fetch_add(1, std::memory_order_relaxed);
  if (bad) slice.bad.fetch_add(1, std::memory_order_relaxed);
}

void SloWindowRing::record_counts(TimePoint t, bool bad) {
  Slice& slice = refresh(epoch_of(t));
  slice.total.fetch_add(1, std::memory_order_relaxed);
  if (bad) slice.bad.fetch_add(1, std::memory_order_relaxed);
}

template <typename Fn>
void SloWindowRing::for_valid(TimePoint t, Fn&& fn) const {
  // A slice participates only when its epoch is one of the `slice_count_`
  // epochs ending at epoch(t). Slices stranded by a clock jump (either
  // direction) carry an out-of-range epoch and are skipped until the ring
  // naturally reclaims their slot.
  const std::int64_t cur = epoch_of(t);
  for (int i = 0; i < slice_count_; ++i) {
    const Slice& slice = slices_[i];
    const std::int64_t e = slice.epoch.load(std::memory_order_acquire);
    if (e > cur || e <= cur - slice_count_) continue;
    fn(slice);
  }
}

std::uint64_t SloWindowRing::total(TimePoint t) const {
  std::uint64_t n = 0;
  for_valid(t, [&](const Slice& s) {
    n += s.total.load(std::memory_order_relaxed);
  });
  return n;
}

std::uint64_t SloWindowRing::bad(TimePoint t) const {
  std::uint64_t n = 0;
  for_valid(t, [&](const Slice& s) {
    n += s.bad.load(std::memory_order_relaxed);
  });
  return n;
}

double SloWindowRing::percentile_ms(TimePoint t, double q) const {
  std::uint64_t counts[kBucketCount] = {};
  std::uint64_t total = 0;
  for_valid(t, [&](const Slice& s) {
    for (int b = 0; b < kBucketCount; ++b) {
      const std::uint32_t n = s.buckets[b].load(std::memory_order_relaxed);
      counts[b] += n;
      total += n;
    }
  });
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    seen += counts[b];
    if (seen >= target && counts[b] > 0) return bucket_upper_ms(b);
  }
  return bucket_upper_ms(kBucketCount - 1);
}

double SloWindowRing::bad_fraction(TimePoint t) const {
  std::uint64_t total = 0;
  std::uint64_t bad = 0;
  for_valid(t, [&](const Slice& s) {
    total += s.total.load(std::memory_order_relaxed);
    bad += s.bad.load(std::memory_order_relaxed);
  });
  return total ? static_cast<double>(bad) / static_cast<double>(total) : 0.0;
}

// --- SloEngine ---------------------------------------------------------------

namespace {
constexpr int kSlicesPerWindow = 60;

Duration slice_for(Duration window, double scale) {
  const auto scaled = std::chrono::duration_cast<Duration>(window * scale);
  return std::max<Duration>(scaled / kSlicesPerWindow, from_ms(1));
}
}  // namespace

SloEngine::Tracker::Tracker(SloSpec s, double scale, int slices,
                            Duration window_slice, Duration short_slice,
                            Duration long_slice)
    : spec(std::move(s)),
      is_get(slo_is_get(spec.signal)),
      quantile(slo_quantile(spec.signal)),
      budget(slo_is_latency(spec.signal) ? 1.0 - slo_quantile(spec.signal)
                                         : spec.target_fraction),
      wall_to_model(1.0 / scale),
      window(slices, window_slice),
      burn_short(slices, short_slice),
      burn_long(slices, long_slice) {}

double SloEngine::Tracker::current_value(TimePoint t) const {
  if (slo_is_latency(spec.signal)) return window.percentile_ms(t, quantile);
  return window.bad_fraction(t);
}

bool SloEngine::Tracker::over_target(double current) const {
  const double target =
      slo_is_latency(spec.signal) ? spec.target_ms : spec.target_fraction;
  return current > target;
}

SloEngine::SloEngine(std::string instance_name)
    : instance_name_(std::move(instance_name)) {}

Status SloEngine::add(const SloSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("slo needs a name");
  }
  if (slo_is_latency(spec.signal)) {
    if (spec.target_ms <= 0) {
      return Status::InvalidArgument("slo '" + spec.name +
                                     "' needs a positive latency target");
    }
  } else if (spec.target_fraction <= 0 || spec.target_fraction >= 1) {
    return Status::InvalidArgument("slo '" + spec.name +
                                   "' error-rate target must be in (0,1)");
  }
  if (spec.window <= Duration::zero() ||
      spec.burn_short <= Duration::zero() ||
      spec.burn_long <= Duration::zero()) {
    return Status::InvalidArgument("slo '" + spec.name +
                                   "' windows must be positive");
  }

  // Freeze the effective time scale, exactly like timer rules scale their
  // periods (control.cpp): window geometry shrinks to wall time, recorded
  // wall latencies are scaled back up to modelled ms (see record()).
  const double raw_scale = time_scale();
  const double scale = raw_scale > 0 ? raw_scale : 1.0;

  std::lock_guard lock(mu_);
  const TrackerList* cur = trackers_.load(std::memory_order_acquire);
  // Reject duplicates before touching the registry: a rejected add must not
  // clobber the live objective's published target/violated gauges.
  if (cur) {
    for (const auto& existing : *cur) {
      if (existing->spec.name == spec.name) {
        return Status::AlreadyExists("slo '" + spec.name + "'");
      }
    }
  }

  auto tracker = std::make_shared<Tracker>(
      spec, scale, kSlicesPerWindow, slice_for(spec.window, scale),
      slice_for(spec.burn_short, scale), slice_for(spec.burn_long, scale));

  MetricsRegistry& reg = MetricsRegistry::global();
  const MetricsRegistry::Labels labels = {
      {"slo", spec.name}, {"instance", instance_name_}, {"tier", spec.tier}};
  tracker->current_gauge = &reg.gauge("tiera_slo_current", labels);
  tracker->target_gauge = &reg.gauge("tiera_slo_target", labels);
  tracker->violated_gauge = &reg.gauge("tiera_slo_violated", labels);
  tracker->violations_counter =
      &reg.counter("tiera_slo_violations_total", labels);
  MetricsRegistry::Labels burn_labels = labels;
  burn_labels.emplace_back("window", window_label(spec.burn_short));
  tracker->burn_short_gauge = &reg.gauge("tiera_slo_burn_rate", burn_labels);
  burn_labels.back().second = window_label(spec.burn_long);
  tracker->burn_long_gauge = &reg.gauge("tiera_slo_burn_rate", burn_labels);
  tracker->target_gauge->set(slo_is_latency(spec.signal)
                                 ? spec.target_ms
                                 : spec.target_fraction);
  tracker->violated_gauge->set(0);

  auto next = std::make_unique<TrackerList>();
  if (cur) *next = *cur;
  next->push_back(std::move(tracker));
  trackers_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
  return Status::Ok();
}

std::size_t SloEngine::size() const {
  const TrackerList* list = trackers_.load(std::memory_order_acquire);
  return list ? list->size() : 0;
}

void SloEngine::record(bool is_get, Duration latency, std::string_view tier,
                       bool ok) {
  const TrackerList* list = trackers_.load(std::memory_order_acquire);
  if (!list) return;
  const TimePoint t = now();
  const double wall_ms = to_ms(latency);
  for (const auto& tracker : *list) {
    if (!tracker->spec.tier.empty() && tracker->spec.tier != tier) continue;
    // Modelled ms, so comparisons against target_ms (and the published
    // quantiles) are scale-invariant.
    const double latency_ms = wall_ms * tracker->wall_to_model;
    bool bad = false;
    if (slo_is_latency(tracker->spec.signal)) {
      if (tracker->is_get != is_get) continue;
      bad = !ok || latency_ms > tracker->spec.target_ms;
    } else {
      bad = !ok;
    }
    tracker->window.record(t, latency_ms, bad);
    // Burn windows are only ever read through bad_fraction(); skip the
    // quantile bucket work for them.
    tracker->burn_short.record_counts(t, bad);
    tracker->burn_long.record_counts(t, bad);
  }
}

bool SloEngine::evaluate(TimePoint t) {
  const TrackerList* list = trackers_.load(std::memory_order_acquire);
  if (!list) return false;
  bool any_flipped = false;
  for (const auto& tracker : *list) {
    const double current = tracker->current_value(t);
    const bool violated = tracker->over_target(current);
    const bool was = tracker->violated.exchange(violated,
                                                std::memory_order_acq_rel);
    if (violated && !was) {
      tracker->violations.fetch_add(1, std::memory_order_relaxed);
      tracker->violations_counter->inc();
    }
    if (violated != was) any_flipped = true;
    tracker->current_gauge->set(current);
    tracker->violated_gauge->set(violated ? 1.0 : 0.0);
    const double budget = tracker->budget > 0 ? tracker->budget : 1.0;
    tracker->burn_short_gauge->set(tracker->burn_short.bad_fraction(t) /
                                   budget);
    tracker->burn_long_gauge->set(tracker->burn_long.bad_fraction(t) /
                                  budget);
  }
  return any_flipped;
}

double SloEngine::violated_value(std::string_view name) const {
  const TrackerList* list = trackers_.load(std::memory_order_acquire);
  if (!list) return 0;
  for (const auto& tracker : *list) {
    if (tracker->spec.name == name) {
      return tracker->violated.load(std::memory_order_acquire) ? 1.0 : 0.0;
    }
  }
  return 0;
}

std::vector<SloStatus> SloEngine::status(TimePoint t) const {
  std::vector<SloStatus> out;
  const TrackerList* list = trackers_.load(std::memory_order_acquire);
  if (!list) return out;
  out.reserve(list->size());
  for (const auto& tracker : *list) {
    SloStatus row;
    row.name = tracker->spec.name;
    row.tier = tracker->spec.tier;
    row.signal = std::string(to_string(tracker->spec.signal));
    row.is_latency = slo_is_latency(tracker->spec.signal);
    row.target = row.is_latency ? tracker->spec.target_ms
                                : tracker->spec.target_fraction;
    row.current = tracker->current_value(t);
    row.window_s = to_seconds(tracker->spec.window);
    row.samples = tracker->window.total(t);
    const double budget = tracker->budget > 0 ? tracker->budget : 1.0;
    row.burn_short = tracker->burn_short.bad_fraction(t) / budget;
    row.burn_long = tracker->burn_long.bad_fraction(t) / budget;
    row.violated = tracker->violated.load(std::memory_order_acquire);
    row.violations = tracker->violations.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace tiera
