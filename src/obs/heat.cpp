#include "obs/heat.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/hash.h"

namespace tiera {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Derives the two independent row hashes for double hashing. Forcing h2 odd
// makes it a bijection modulo the power-of-two width, so rows index
// distinct permutations of the columns.
void split_hash(std::uint64_t key_hash, std::uint64_t* h1, std::uint64_t* h2) {
  *h1 = key_hash;
  *h2 = (key_hash >> 32) | (key_hash << 32);
  *h2 |= 1;
}

}  // namespace

// --- CountMinSketch ----------------------------------------------------------

CountMinSketch::CountMinSketch(int shards, int depth, std::size_t width)
    : shards_(std::max(shards, 1)),
      depth_(std::clamp(depth, 1, kMaxDepth)),
      width_(round_up_pow2(std::max<std::size_t>(width, 16))),
      counters_(static_cast<std::size_t>(shards_) * depth_ * width_),
      shard_used_(static_cast<std::size_t>(shards_)) {}

std::size_t CountMinSketch::col_of(std::uint64_t key_hash, int row) const {
  std::uint64_t h1, h2;
  split_hash(key_hash, &h1, &h2);
  return (h1 + static_cast<std::uint64_t>(row) * h2) & (width_ - 1);
}

int CountMinSketch::shard_for_thread() const {
  // Hash of the thread id, cached per thread: repeated adds from one thread
  // stay in one shard, so a hot key's increments from T threads spread over
  // min(T, shards) tables.
  static thread_local const std::size_t tl_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<int>(tl_hash % static_cast<std::size_t>(shards_));
}

std::uint64_t CountMinSketch::add(std::uint64_t key_hash, std::uint32_t n) {
  std::size_t cols[kMaxDepth];
  for (int row = 0; row < depth_; ++row) cols[row] = col_of(key_hash, row);
  const int shard = shard_for_thread();
  if (shard_used_[shard].load(std::memory_order_relaxed) == 0) {
    shard_used_[shard].store(1, std::memory_order_relaxed);
  }
  // The calling shard's min comes from the values written here — no second
  // pass over its counters.
  std::uint64_t own_min = std::numeric_limits<std::uint64_t>::max();
  for (int row = 0; row < depth_; ++row) {
    auto& counter = counters_[slot(shard, row, cols[row])];
    // Saturate instead of wrapping. The relaxed check-then-add can overshoot
    // by a few concurrent increments near the cap, which halving absorbs.
    std::uint64_t v = counter.load(std::memory_order_relaxed);
    if (v < std::numeric_limits<std::uint32_t>::max() - n) {
      v = counter.fetch_add(n, std::memory_order_relaxed) + n;
    }
    own_min = std::min(own_min, v);
  }
  std::uint64_t total = own_min;
  for (int other = 0; other < shards_; ++other) {
    if (other == shard ||
        shard_used_[other].load(std::memory_order_relaxed) == 0) {
      continue;
    }
    std::uint64_t shard_min = std::numeric_limits<std::uint64_t>::max();
    for (int row = 0; row < depth_; ++row) {
      const std::uint64_t v =
          counters_[slot(other, row, cols[row])].load(std::memory_order_relaxed);
      shard_min = std::min(shard_min, v);
    }
    total += shard_min;
  }
  return total;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key_hash) const {
  std::size_t cols[kMaxDepth];
  for (int row = 0; row < depth_; ++row) cols[row] = col_of(key_hash, row);
  std::uint64_t total = 0;
  for (int shard = 0; shard < shards_; ++shard) {
    // An untouched shard's min-over-rows is zero; skip its cache lines.
    if (shard_used_[shard].load(std::memory_order_relaxed) == 0) continue;
    std::uint64_t shard_min = std::numeric_limits<std::uint64_t>::max();
    for (int row = 0; row < depth_; ++row) {
      const std::uint64_t v =
          counters_[slot(shard, row, cols[row])].load(std::memory_order_relaxed);
      shard_min = std::min(shard_min, v);
    }
    total += shard_min;
  }
  return total;
}

void CountMinSketch::halve() {
  for (auto& counter : counters_) {
    const std::uint32_t v = counter.load(std::memory_order_relaxed);
    if (v != 0) counter.store(v >> 1, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> CountMinSketch::histogram() const {
  std::vector<std::uint64_t> buckets(kHistogramBuckets, 0);
  for (std::size_t col = 0; col < width_; ++col) {
    // Same combination rule as estimate(): per shard min-over-rows at this
    // column, summed across shards. Not exactly any key's estimate (keys
    // occupy different columns per row), but distributed the same way.
    std::uint64_t total = 0;
    for (int shard = 0; shard < shards_; ++shard) {
      if (shard_used_[shard].load(std::memory_order_relaxed) == 0) continue;
      std::uint64_t shard_min = std::numeric_limits<std::uint64_t>::max();
      for (int row = 0; row < depth_; ++row) {
        shard_min = std::min(shard_min, static_cast<std::uint64_t>(
            counters_[slot(shard, row, col)].load(std::memory_order_relaxed)));
      }
      total += shard_min;
    }
    if (total == 0) continue;
    int bucket = 0;
    while ((total >>= 1) != 0) ++bucket;
    buckets[std::min(bucket, kHistogramBuckets - 1)]++;
  }
  return buckets;
}

// --- HeatTopK ---------------------------------------------------------------

HeatTopK::HeatTopK(std::size_t capacity, const CountMinSketch* sketch)
    : capacity_(std::max<std::size_t>(capacity, 1)), sketch_(sketch) {
  members_.reserve(capacity_);
}

void HeatTopK::offer(std::string_view key, std::uint64_t key_hash,
                     std::uint64_t estimate) {
  // Cold-key early-out: a full table admits nothing at or below the cached
  // minimum, so the overwhelming majority of offers end here, lock-free.
  if (size_.load(std::memory_order_relaxed) >= capacity_ &&
      estimate <= threshold_.load(std::memory_order_relaxed)) {
    return;
  }
  // Only offers that clear the early-out tick the scan budget; a scan is
  // allowed once per capacity_ of them.
  const std::uint64_t seq =
      offer_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::shared_lock lock(mu_);
    auto it = members_.find(key_hash);
    if (it != members_.end()) {
      it->second->cached_estimate.store(estimate, std::memory_order_relaxed);
      return;
    }
  }
  // Non-member above the threshold: admission needs a free slot or an
  // eviction scan. When the table is full and the scan budget is spent,
  // deny without the exclusive lock — and remember this estimate as the new
  // bar so the ties right behind it stay on the lock-free path.
  if (size_.load(std::memory_order_relaxed) >= capacity_ &&
      seq - last_scan_seq_.load(std::memory_order_relaxed) < capacity_) {
    if (estimate > threshold_.load(std::memory_order_relaxed)) {
      threshold_.store(estimate, std::memory_order_relaxed);
    }
    return;
  }
  std::unique_lock lock(mu_);
  auto it = members_.find(key_hash);
  if (it != members_.end()) {
    it->second->cached_estimate.store(estimate, std::memory_order_relaxed);
    return;
  }
  if (members_.size() >= capacity_) {
    // Re-check the scan budget under the lock (another thread may have
    // spent it between the lock-free check and here).
    if (seq - last_scan_seq_.load(std::memory_order_relaxed) < capacity_) {
      return;
    }
    last_scan_seq_.store(seq, std::memory_order_relaxed);
    // Re-query the sketch for every member: cached estimates go stale (they
    // only refresh when that key is offered), and evicting on stale data
    // would keep cooled-off keys pinned in the table.
    auto victim = members_.end();
    std::uint64_t victim_est = std::numeric_limits<std::uint64_t>::max();
    for (auto m = members_.begin(); m != members_.end(); ++m) {
      const std::uint64_t est = sketch_->estimate(m->first);
      m->second->cached_estimate.store(est, std::memory_order_relaxed);
      if (est < victim_est) {
        victim_est = est;
        victim = m;
      }
    }
    if (estimate <= victim_est) {
      // Not hotter than the coldest member; remember the (refreshed)
      // admission bar and bail.
      threshold_.store(victim_est, std::memory_order_relaxed);
      return;
    }
    members_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  auto member = std::make_unique<Member>();
  member->key.assign(key.data(), key.size());
  member->cached_estimate.store(estimate, std::memory_order_relaxed);
  members_.emplace(key_hash, std::move(member));
  size_.store(members_.size(), std::memory_order_relaxed);
  if (members_.size() >= capacity_) {
    std::uint64_t min_est = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [hash, m] : members_) {
      min_est = std::min(
          min_est, m->cached_estimate.load(std::memory_order_relaxed));
    }
    threshold_.store(min_est, std::memory_order_relaxed);
  }
}

void HeatTopK::on_decay() {
  std::unique_lock lock(mu_);
  for (auto& [hash, member] : members_) {
    const std::uint64_t v =
        member->cached_estimate.load(std::memory_order_relaxed);
    member->cached_estimate.store(v >> 1, std::memory_order_relaxed);
  }
  const std::uint64_t t = threshold_.load(std::memory_order_relaxed);
  threshold_.store(t >> 1, std::memory_order_relaxed);
}

std::vector<HeatEntry> HeatTopK::snapshot(std::size_t top_n) const {
  std::vector<HeatEntry> out;
  {
    std::shared_lock lock(mu_);
    out.reserve(members_.size());
    for (const auto& [hash, member] : members_) {
      HeatEntry entry;
      entry.key = member->key;
      entry.estimate = sketch_->estimate(hash);
      out.push_back(std::move(entry));
    }
  }
  std::sort(out.begin(), out.end(), [](const HeatEntry& a, const HeatEntry& b) {
    return a.estimate != b.estimate ? a.estimate > b.estimate : a.key < b.key;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

// --- HeatTracker ------------------------------------------------------------

HeatTracker::TierHeat::TierHeat(std::string tier_label,
                                const HeatOptions& options)
    : label(std::move(tier_label)),
      sketch(options.sketch_shards, options.sketch_depth, options.sketch_width),
      topk(options.top_k, &sketch) {
  auto& reg = MetricsRegistry::global();
  const MetricsRegistry::Labels labels = {{"tier", label}};
  records_counter = &reg.counter("tiera_heat_records_total", labels);
  evictions_counter = &reg.counter("tiera_heat_evictions_total", labels);
  tracked_gauge = &reg.gauge("tiera_heat_tracked_keys", labels);
  top_rate_gauge = &reg.gauge("tiera_heat_top_rate_per_s", labels);
}

HeatTracker::HeatTracker(std::string instance_name, HeatOptions options)
    : instance_name_(std::move(instance_name)),
      options_(options),
      half_life_s_(std::max(
          std::chrono::duration_cast<std::chrono::duration<double>>(
              options.half_life)
              .count(),
          1e-6)) {
  auto& reg = MetricsRegistry::global();
  decay_counter_ = &reg.counter("tiera_heat_decay_epochs_total");
  memory_gauge_ = &reg.gauge("tiera_heat_memory_bytes");
  collector_id_ = reg.add_collector([this] { collect_metrics(); });
}

HeatTracker::~HeatTracker() {
  MetricsRegistry::global().remove_collector(collector_id_);
}

double HeatTracker::rate_of(std::uint64_t estimate) const {
  return static_cast<double>(estimate) / (2.0 * half_life_s_);
}

HeatTracker::TierHeat& HeatTracker::tier_heat(std::string_view tier) {
  const TierList* list = tiers_.load(std::memory_order_acquire);
  if (list != nullptr) {
    for (const auto& entry : *list) {
      if (entry->label == tier) return *entry;
    }
  }
  std::lock_guard lock(mu_);
  const TierList* current = tiers_.load(std::memory_order_acquire);
  if (current != nullptr) {
    for (const auto& entry : *current) {
      if (entry->label == tier) return *entry;
    }
  }
  auto next = std::make_unique<TierList>();
  if (current != nullptr) *next = *current;
  next->push_back(std::make_shared<TierHeat>(std::string(tier), options_));
  TierHeat& created = *next->back();
  tiers_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
  return created;
}

void HeatTracker::record(std::string_view tier, std::string_view key,
                         std::uint64_t bytes) {
  TierHeat& heat = tier_heat(tier);
  const std::uint64_t hash = fnv1a64(key);
  const std::uint64_t estimate = heat.sketch.add(hash);
  heat.topk.offer(key, hash, estimate);
  heat.records.fetch_add(1, std::memory_order_relaxed);
  heat.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void HeatTracker::on_tick(Duration modelled_elapsed) {
  // Decay runs only from the control timer thread; mu_ also orders it
  // against tier creation.
  std::lock_guard lock(mu_);
  since_decay_ += modelled_elapsed;
  const TierList* list = tiers_.load(std::memory_order_acquire);
  while (since_decay_ >= options_.half_life) {
    since_decay_ -= options_.half_life;
    if (list != nullptr) {
      for (const auto& entry : *list) {
        entry->sketch.halve();
        entry->topk.on_decay();
      }
    }
    decay_epochs_.fetch_add(1, std::memory_order_relaxed);
  }
}

HeatSnapshot HeatTracker::snapshot(std::size_t top_n) const {
  HeatSnapshot snap;
  snap.half_life_s = half_life_s_;
  snap.decay_epochs = decay_epochs_.load(std::memory_order_relaxed);
  snap.memory_bytes = memory_bytes();
  const TierList* list = tiers_.load(std::memory_order_acquire);
  if (list == nullptr) return snap;
  for (const auto& entry : *list) {
    TierHeatSnapshot tier;
    tier.tier = entry->label;
    tier.top = entry->topk.snapshot(top_n);
    for (auto& hot : tier.top) hot.rate_per_s = rate_of(hot.estimate);
    tier.histogram = entry->sketch.histogram();
    tier.tracked_keys = entry->topk.size();
    tier.records = entry->records.load(std::memory_order_relaxed);
    tier.bytes = entry->bytes.load(std::memory_order_relaxed);
    tier.evictions = entry->topk.evictions();
    snap.tiers.push_back(std::move(tier));
  }
  return snap;
}

std::uint64_t HeatTracker::memory_bytes() const {
  // Per-tier fixed bound: the sketch allocation plus the top-K table at
  // capacity (member struct + hash-map node + a key). The bound is what
  // matters — it is independent of how many distinct keys flow through —
  // so charge a generous flat 256 bytes per member slot.
  constexpr std::uint64_t kPerMemberBound = 256;
  std::uint64_t total = 0;
  const TierList* list = tiers_.load(std::memory_order_acquire);
  if (list == nullptr) return 0;
  for (const auto& entry : *list) {
    total += entry->sketch.memory_bytes();
    total += options_.top_k * kPerMemberBound;
  }
  return total;
}

void HeatTracker::collect_metrics() {
  const TierList* list = tiers_.load(std::memory_order_acquire);
  const std::uint64_t epochs = decay_epochs_.load(std::memory_order_relaxed);
  if (epochs > synced_epochs_) {
    decay_counter_->inc(epochs - synced_epochs_);
    synced_epochs_ = epochs;
  }
  memory_gauge_->set(static_cast<double>(memory_bytes()));
  if (list == nullptr) return;
  for (const auto& entry : *list) {
    const std::uint64_t records = entry->records.load(std::memory_order_relaxed);
    if (records > entry->synced_records) {
      entry->records_counter->inc(records - entry->synced_records);
      entry->synced_records = records;
    }
    const std::uint64_t evictions = entry->topk.evictions();
    if (evictions > entry->synced_evictions) {
      entry->evictions_counter->inc(evictions - entry->synced_evictions);
      entry->synced_evictions = evictions;
    }
    entry->tracked_gauge->set(static_cast<double>(entry->topk.size()));
    const auto top = entry->topk.snapshot(1);
    entry->top_rate_gauge->set(top.empty() ? 0.0 : rate_of(top[0].estimate));
  }
}

}  // namespace tiera
