#include "obs/stage.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace tiera {

namespace {

constexpr int kMaxStageDepth = 16;

const char* const kStageNames[kStageSlotCount] = {
    "rpc.decode",   "policy.eval",    "metadata.lookup", "journal.append",
    "tier.io",      "response.build", "other",           "total",
};

const char* const kOpNames[kStageOpCount] = {"put", "get", "delete",
                                             "background"};

// Per-thread accounting for the (at most one) recording op scope.
struct OpState {
  bool active = false;
  StageOp op = StageOp::kPut;
  TimePoint op_start;
  // Start of the current segment: the last stage push/pop. Elapsed segment
  // time belongs to the innermost open stage (or to "other" when none is).
  TimePoint seg_start;
  int depth = 0;
  Stage stack[kMaxStageDepth];
  double accum_us[kNamedStageCount] = {};
  std::uint64_t op_counter = 0;  // sampling decision
  // Nesting depth of OpStageScopes regardless of sampling, so a nested
  // scope (instance put() under an RPC handler) stays inert — it neither
  // starts its own breakdown nor pushes a duplicate profiler frame.
  int scope_depth = 0;
};

thread_local OpState t_op;

std::uint64_t env_sample_every() {
  if (const char* env = std::getenv("TIERA_STAGE_SAMPLE_N")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end && *end == '\0') return static_cast<std::uint64_t>(v);
  }
  return 8;  // match the tier latency sampling default
}

std::atomic<std::uint64_t>& sample_every_atomic() {
  static std::atomic<std::uint64_t> value{env_sample_every()};
  return value;
}

// The 4×8 histogram table, created once against the global registry.
// References stay valid for the registry's (process) lifetime.
struct StageSeries {
  LatencyHistogram* h[kStageOpCount][kStageSlotCount];
  StageSeries() {
    MetricsRegistry& reg = MetricsRegistry::global();
    for (int op = 0; op < kStageOpCount; ++op) {
      for (int s = 0; s < kStageSlotCount; ++s) {
        h[op][s] = &reg.histogram(
            "tiera_op_stage_latency_ms",
            {{"op", kOpNames[op]}, {"stage", kStageNames[s]}});
      }
    }
    reg.gauge("tiera_stage_sample_every")
        .set(static_cast<double>(sample_every_atomic().load()));
  }
};

StageSeries& series() {
  static StageSeries s;
  return s;
}

double us_between(TimePoint a, TimePoint b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<int>(stage)];
}

const char* stage_op_name(StageOp op) {
  return kOpNames[static_cast<int>(op)];
}

std::uint64_t stage_sample_every() { return sample_every_atomic().load(); }

void set_stage_sample_every(std::uint64_t n) {
  sample_every_atomic().store(n);
  MetricsRegistry::global()
      .gauge("tiera_stage_sample_every")
      .set(static_cast<double>(n));
}

bool stage_recording_active() { return t_op.active; }

OpStageScope::OpStageScope(StageOp op) {
  OpState& st = t_op;
  if (st.scope_depth++ > 0) return;  // nested op: fold into the enclosing op
  owner_ = true;
  if (profile_frames_enabled()) {
    this_thread_profile_stack().push(stage_op_name(op));
    pushed_frame_ = true;
  }
  const std::uint64_t every = sample_every_atomic().load();
  if (every == 0 || (st.op_counter++ % every) != 0) return;
  recording_ = true;
  st.active = true;
  st.op = op;
  st.depth = 0;
  for (double& a : st.accum_us) a = 0;
  st.op_start = st.seg_start = now();
}

OpStageScope::~OpStageScope() {
  OpState& st = t_op;
  --st.scope_depth;
  if (pushed_frame_) this_thread_profile_stack().pop();
  if (!recording_) return;
  const TimePoint end = now();
  // A stage scope outliving its op scope would be a bug in the caller;
  // charge whatever is still open so the books balance regardless.
  while (st.depth > 0) {
    st.accum_us[static_cast<int>(st.stack[--st.depth])] +=
        us_between(st.seg_start, end);
    st.seg_start = end;
  }
  const double whole_us = us_between(st.op_start, end);
  double named_us = 0;
  for (double a : st.accum_us) named_us += a;
  const double other_us = whole_us > named_us ? whole_us - named_us : 0;

  StageSeries& s = series();
  const int op = static_cast<int>(st.op);
  for (int i = 0; i < kNamedStageCount; ++i) {
    if (st.accum_us[i] > 0) s.h[op][i]->record_ms(st.accum_us[i] / 1000.0);
  }
  s.h[op][static_cast<int>(Stage::kOther)]->record_ms(other_us / 1000.0);
  s.h[op][static_cast<int>(Stage::kTotal)]->record_ms(whole_us / 1000.0);
  st.active = false;
}

StageTimer::StageTimer(Stage stage) {
  if (profile_frames_enabled()) {
    this_thread_profile_stack().push(stage_name(stage));
    pushed_frame_ = true;
  }
  OpState& st = t_op;
  if (!st.active || st.depth >= kMaxStageDepth) return;
  recording_ = true;
  const TimePoint t = now();
  if (st.depth > 0) {
    // The elapsed segment belongs to the (now paused) parent stage.
    st.accum_us[static_cast<int>(st.stack[st.depth - 1])] +=
        us_between(st.seg_start, t);
  }
  st.stack[st.depth++] = stage;
  st.seg_start = t;
}

StageTimer::~StageTimer() {
  if (recording_) {
    OpState& st = t_op;
    const TimePoint t = now();
    if (st.depth > 0) {
      st.accum_us[static_cast<int>(st.stack[--st.depth])] +=
          us_between(st.seg_start, t);
    }
    st.seg_start = t;
  }
  if (pushed_frame_) this_thread_profile_stack().pop();
}

std::vector<StageRow> stage_breakdown() {
  StageSeries& s = series();
  std::vector<StageRow> rows;
  for (int op = 0; op < kStageOpCount; ++op) {
    for (int st = 0; st < kStageSlotCount; ++st) {
      const LatencyHistogram& h = *s.h[op][st];
      if (h.count() == 0) continue;
      StageRow row;
      row.op = kOpNames[op];
      row.stage = kStageNames[st];
      row.count = h.count();
      row.sum_ms = h.sum_ms();
      row.mean_us = h.mean_ms() * 1000.0;
      row.p50_us = h.percentile_ms(0.5) * 1000.0;
      row.p99_us = h.percentile_ms(0.99) * 1000.0;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

namespace {

// Per-op totals used by the report and the reconciliation checks.
struct OpTotals {
  double named_ms = 0;
  double other_ms = 0;
  double total_ms = 0;
  std::uint64_t samples = 0;
};

OpTotals op_totals(int op) {
  StageSeries& s = series();
  OpTotals t;
  for (int i = 0; i < kNamedStageCount; ++i) t.named_ms += s.h[op][i]->sum_ms();
  t.other_ms = s.h[op][static_cast<int>(Stage::kOther)]->sum_ms();
  t.total_ms = s.h[op][static_cast<int>(Stage::kTotal)]->sum_ms();
  t.samples = s.h[op][static_cast<int>(Stage::kTotal)]->count();
  return t;
}

}  // namespace

std::string render_stage_report() {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-12s %-16s %10s %12s %10s %10s\n", "OP",
                "STAGE", "COUNT", "MEAN-us", "P50-us", "P99-us");
  out += line;
  const std::vector<StageRow> rows = stage_breakdown();
  for (const auto& r : rows) {
    std::snprintf(line, sizeof(line), "%-12s %-16s %10llu %12.2f %10.2f %10.2f\n",
                  r.op.c_str(), r.stage.c_str(),
                  static_cast<unsigned long long>(r.count), r.mean_us,
                  r.p50_us, r.p99_us);
    out += line;
  }
  for (int op = 0; op < kStageOpCount; ++op) {
    const OpTotals t = op_totals(op);
    if (t.samples == 0) continue;
    std::snprintf(line, sizeof(line),
                  "%s: %llu sampled ops, coverage %.1f%% of whole-op time "
                  "(other %.1f%%)\n",
                  kOpNames[op], static_cast<unsigned long long>(t.samples),
                  t.total_ms > 0 ? 100.0 * t.named_ms / t.total_ms : 0.0,
                  t.total_ms > 0 ? 100.0 * t.other_ms / t.total_ms : 0.0);
    out += line;
  }
  return out;
}

double stage_reconciliation_error() {
  double worst = 0;
  for (int op = 0; op < kStageOpCount; ++op) {
    const OpTotals t = op_totals(op);
    if (t.samples == 0 || t.total_ms <= 0) continue;
    const double err =
        std::abs(t.named_ms + t.other_ms - t.total_ms) / t.total_ms;
    if (err > worst) worst = err;
  }
  return worst;
}

double stage_attribution_gap() {
  double worst = 0;
  for (int op = 0; op < kStageOpCount; ++op) {
    const OpTotals t = op_totals(op);
    if (t.samples == 0 || t.total_ms <= 0) continue;
    const double gap = t.other_ms / t.total_ms;
    if (gap > worst) worst = gap;
  }
  return worst;
}

}  // namespace tiera
