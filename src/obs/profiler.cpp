#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/profile_stack.h"
#include "obs/metrics.h"

namespace tiera {

namespace {

constexpr std::uint64_t kMinIntervalUs = 100;
constexpr std::uint64_t kMaxIntervalUs = 1'000'000;

}  // namespace

Profiler& Profiler::global() {
  static Profiler* p = new Profiler;  // leaked: may outlive static teardown
  return *p;
}

Profiler::Profiler() = default;

Status Profiler::start(std::uint64_t interval_us) {
  interval_us = std::clamp(interval_us, kMinIntervalUs, kMaxIntervalUs);
  std::lock_guard lock(mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("profiler capture already running");
  }
  if (sampler_.joinable()) sampler_.join();  // reap the previous capture
  counts_.clear();
  total_samples_ = 0;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  set_profile_frames_enabled(true);
  MetricsRegistry::global().gauge("tiera_profiler_running").set(1);
  sampler_ = std::thread([this, interval_us] { sampler_loop(interval_us); });
  return Status::Ok();
}

std::string Profiler::stop() {
  std::thread to_join;
  {
    std::lock_guard lock(mu_);
    if (running_.load(std::memory_order_acquire)) {
      stop_requested_.store(true, std::memory_order_release);
      to_join = std::move(sampler_);
    }
  }
  if (to_join.joinable()) to_join.join();
  set_profile_frames_enabled(false);
  MetricsRegistry::global().gauge("tiera_profiler_running").set(0);
  return folded();
}

Result<std::string> Profiler::capture(std::uint64_t duration_ms,
                                      std::uint64_t interval_us) {
  if (duration_ms == 0 || duration_ms > 5 * 60 * 1000) {
    return Status::InvalidArgument("profile duration must be 1ms..5min");
  }
  TIERA_RETURN_IF_ERROR(start(interval_us));
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  return stop();
}

void Profiler::sampler_loop(std::uint64_t interval_us) {
  profile_set_thread_name("tiera-profiler");
  const char* frames[ProfileStack::kMaxDepth];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(interval_us));
    // Fold each live stack into "thread;frame;..." under the registry
    // lock; idle threads (no frames) count toward their thread's idle bin
    // so wall-time shares stay honest.
    std::lock_guard lock(mu_);
    for_each_profile_stack([this, &frames](const ProfileStack& stack) {
      const int depth = stack.snapshot(frames, ProfileStack::kMaxDepth);
      const char* name = stack.name();
      std::string key = name ? name : "thread";
      if (depth == 0) {
        key += ";-idle-";
      } else {
        for (int i = 0; i < depth; ++i) {
          key += ';';
          key += frames[i] ? frames[i] : "?";
        }
      }
      ++counts_[key];
      ++total_samples_;
    });
  }
  std::lock_guard lock(mu_);
  MetricsRegistry::global()
      .gauge("tiera_profiler_samples_total")
      .set(static_cast<double>(total_samples_));
  running_.store(false, std::memory_order_release);
}

std::string Profiler::folded() const {
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [key, count] : counts_) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

void Profiler::reset() {
  stop();
  std::lock_guard lock(mu_);
  if (sampler_.joinable()) sampler_.join();
  counts_.clear();
  total_samples_ = 0;
}

namespace {

struct FlameNode {
  std::string name;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
  std::map<std::string, FlameNode> children;
};

void emit_node(const FlameNode& node, int depth, double left_frac,
               double parent_total, std::string* out) {
  const double width_frac =
      parent_total > 0 ? static_cast<double>(node.total) / parent_total : 0;
  if (width_frac < 0.001) return;  // invisible below 0.1% width
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<div class=\"f\" style=\"left:%.4f%%;width:%.4f%%;top:%dpx\" "
                "title=\"%s (%llu samples)\"><span>%s</span></div>\n",
                left_frac * 100.0, width_frac * 100.0, depth * 18,
                node.name.c_str(),
                static_cast<unsigned long long>(node.total),
                node.name.c_str());
  *out += buf;
  double child_left = left_frac;
  for (const auto& [name, child] : node.children) {
    emit_node(child, depth + 1, child_left, parent_total, out);
    child_left += parent_total > 0
                      ? static_cast<double>(child.total) / parent_total
                      : 0;
  }
}

}  // namespace

std::string render_flamegraph_html(const std::string& folded,
                                   const std::string& title) {
  FlameNode root;
  root.name = "all";
  std::size_t pos = 0;
  int max_depth = 1;
  while (pos < folded.size()) {
    std::size_t eol = folded.find('\n', pos);
    if (eol == std::string::npos) eol = folded.size();
    const std::string line = folded.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::uint64_t count = std::strtoull(line.c_str() + space + 1,
                                              nullptr, 10);
    if (count == 0) continue;
    root.total += count;
    FlameNode* node = &root;
    std::size_t fp = 0;
    int depth = 1;
    while (fp < space) {
      std::size_t sep = line.find(';', fp);
      if (sep == std::string::npos || sep > space) sep = space;
      const std::string frame = line.substr(fp, sep - fp);
      node = &node->children[frame];
      node->name = frame;
      node->total += count;
      fp = sep + 1;
      ++depth;
    }
    node->self += count;
    max_depth = std::max(max_depth, depth);
  }

  std::string boxes;
  double left = 0;
  for (const auto& [name, child] : root.children) {
    emit_node(child, 0, left, static_cast<double>(root.total), &boxes);
    left += root.total > 0
                ? static_cast<double>(child.total) / root.total
                : 0;
  }

  std::string html;
  html += "<!doctype html><html><head><meta charset=\"utf-8\"><title>";
  html += title;
  html += "</title><style>\n"
          "body{font:12px monospace;margin:12px}\n"
          "#fg{position:relative;border:1px solid #ccc}\n"
          ".f{position:absolute;height:16px;overflow:hidden;"
          "background:#f80;border:1px solid #fff;box-sizing:border-box;"
          "white-space:nowrap;cursor:default}\n"
          ".f:hover{background:#fb4}\n"
          ".f span{padding-left:2px}\n"
          "</style></head><body><h3>";
  html += title;
  html += " &mdash; " + std::to_string(root.total) + " samples</h3>\n";
  html += "<div id=\"fg\" style=\"height:" +
          std::to_string(max_depth * 18 + 4) + "px\">\n";
  html += boxes;
  html += "</div></body></html>\n";
  return html;
}

}  // namespace tiera
