// Live spend accumulator: what this instance has actually spent, so far.
//
// CostModel (src/store/cost_model.h) answers "what would a month of this
// look like" by extrapolating cumulative counters; the paper's cost figures
// (Figs. 9-13) are exactly that projection. This meter answers the
// operational question instead: dollars accrued *to date*, attributed per
// tier and per policy rule, ticking live on the control layer's timer.
//
// Three spend classes, mirroring the cloud bills the paper models:
//  * storage  — $/GB-month integrated over occupancy: each tick charges
//               billable_bytes * rate * elapsed/month, where billable bytes
//               follow the tier's bill_by_capacity flag (provisioned tiers
//               like EBS bill capacity, object stores bill bytes used).
//  * request  — per-op charges from tier op-count deltas (puts*$put +
//               gets*$get + all_ops*$io, the CostModel convention), which
//               catches background/policy traffic without any hot-path hook.
//  * egress   — (simulated) $/GB on bytes leaving a tier: client-facing
//               reads plus policy moves/copies reading from the tier.
//
// Attribution: per-tier accounts are the ledger — their sum IS the total.
// Per-rule accounts are a *view* of the same spend (the egress + request
// charges a rule's data movement caused), so the RULE table does not add to
// the TIER table; its byte totals reconcile with the engine's
// tiera_instance_policy_bytes_total accounting instead.
//
// Satellite series: tiera_tier_read_bytes_total / tiera_tier_write_bytes_total
// count *client-facing* bytes per serving tier (a GET served by m1 counts
// read bytes against m1; a PUT stored to m1+t2 counts write bytes against
// both). The pre-existing tiera_tier_bytes_{read,written}_total count every
// tier I/O including migrations — these two families answer different
// questions and both stay.
//
// Layering: obs cannot depend on store, so pricing arrives as a plain
// CostRates struct (TieraInstance copies it from each tier's TierPricing).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace tiera {

// Billing-month length used to turn $/GB-month into $/GB-second; matches
// CostModel::kSecondsPerMonth.
inline constexpr double kCostMeterSecondsPerMonth = 30.0 * 24 * 3600;

// Mirror of TierPricing (src/store/tier.h) — kept structurally identical so
// the instance can copy field-for-field.
struct CostRates {
  double dollars_per_gb_month = 0;
  double dollars_per_put = 0;
  double dollars_per_get = 0;
  double dollars_per_io = 0;
  double dollars_per_gb_egress = 0;
  bool bill_by_capacity = false;
};

// One tier's occupancy + cumulative op counts at accrual time (read from
// Tier::used()/capacity() and TierStats by the caller).
struct TierUsage {
  std::string label;
  std::uint64_t used_bytes = 0;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t removes = 0;
};

struct TierCostSnapshot {
  std::string tier;
  double storage_dollars = 0;
  double request_dollars = 0;
  double egress_dollars = 0;
  // Spend rate extrapolated from current occupancy and recent request/egress
  // activity, in $/month of modelled time.
  double monthly_burn_dollars = 0;
  std::uint64_t client_read_bytes = 0;
  std::uint64_t client_write_bytes = 0;
  double total() const {
    return storage_dollars + request_dollars + egress_dollars;
  }
};

struct RuleCostSnapshot {
  std::uint64_t rule_id = 0;  // 0 = movement with no rule attribution
  std::string rule_name;
  std::uint64_t bytes_moved = 0;
  std::uint64_t objects_moved = 0;
  double dollars = 0;  // egress + request charges of this rule's movement
};

struct CostSnapshot {
  std::vector<TierCostSnapshot> tiers;   // ledger: sums to total_dollars
  std::vector<RuleCostSnapshot> rules;   // attribution view, not additive
  double total_dollars = 0;
  double monthly_burn_dollars = 0;
  double modelled_seconds = 0;  // modelled time the meter has accrued over
};

// All spend state of one instance. record_client_{read,write} are hot-path
// safe (copy-on-write account list + relaxed counter adds); accrue() runs on
// the control tick; record_rule_move() runs on policy-response threads.
class CostMeter {
 public:
  explicit CostMeter(std::string instance_name);
  ~CostMeter();

  CostMeter(const CostMeter&) = delete;
  CostMeter& operator=(const CostMeter&) = delete;

  // Registers a tier's account and its metric series. Safe to call for an
  // existing label (rates are refreshed; the account persists).
  void add_tier(std::string_view label, const CostRates& rates);

  // --- Hot path ------------------------------------------------------------
  // Client-facing bytes served from / written to a tier. Unknown labels are
  // dropped (the instance registers every tier at construction).
  void record_client_read(std::string_view tier, std::uint64_t bytes);
  void record_client_write(std::string_view tier, std::uint64_t bytes);

  // --- Policy path ---------------------------------------------------------
  // One engine-level data movement executed for a rule: `bytes` written to
  // `dest_tier`, read out of `src_tier` (empty when the payload was already
  // in hand — a fresh PUT placement has no source egress). Charges the
  // rule's account dest-put + src-get + src-egress at the tiers' rates.
  void record_rule_move(std::uint64_t rule_id, std::string_view rule_name,
                        std::string_view src_tier, std::string_view dest_tier,
                        std::uint64_t bytes, std::uint64_t objects = 1);

  // --- Control tick --------------------------------------------------------
  // Advances the meter by `modelled_elapsed`: integrates storage $ over the
  // interval and bills request/egress deltas accumulated since last tick.
  void accrue(const std::vector<TierUsage>& usage, Duration modelled_elapsed);

  CostSnapshot snapshot() const;

 private:
  struct Account {
    std::string label;
    CostRates rates;
    // Hot-path counters (also the published satellite series — Counter is a
    // relaxed atomic, so no delta-sync indirection is needed).
    Counter* read_bytes_counter = nullptr;   // tiera_tier_read_bytes_total
    Counter* write_bytes_counter = nullptr;  // tiera_tier_write_bytes_total
    // Accrued spend; guarded by mu_.
    double storage_dollars = 0;
    double request_dollars = 0;
    double egress_dollars = 0;
    double monthly_burn = 0;
    // Billing cursors (last counter values already billed); guarded by mu_.
    std::uint64_t billed_puts = 0;
    std::uint64_t billed_gets = 0;
    std::uint64_t billed_removes = 0;
    std::uint64_t billed_egress_bytes = 0;
    std::uint64_t rule_egress_bytes = 0;  // policy reads, billed with client's
    Gauge* storage_gauge = nullptr;
    Gauge* request_gauge = nullptr;
    Gauge* egress_gauge = nullptr;
  };
  using AccountList = std::vector<std::shared_ptr<Account>>;

  struct RuleAccount {
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t bytes = 0;
    std::uint64_t objects = 0;
    double dollars = 0;
    Gauge* dollars_gauge = nullptr;  // tiera_cost_rule_dollars{rule,name}
  };

  // Lock-free lookup on the COW list; nullptr when unknown.
  Account* find_account(std::string_view label) const;
  RuleAccount& rule_account(std::uint64_t id, std::string_view name);

  const std::string instance_name_;

  // Copy-on-write account list (instance hit-counter idiom); retired lists
  // outlive every racing reader.
  std::atomic<const AccountList*> accounts_{nullptr};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<const AccountList>> retired_;

  std::vector<std::unique_ptr<RuleAccount>> rules_;  // guarded by mu_
  double modelled_seconds_ = 0;                      // guarded by mu_
  Gauge* total_gauge_ = nullptr;  // tiera_cost_total_dollars
  Gauge* burn_gauge_ = nullptr;   // tiera_cost_monthly_burn_dollars
};

}  // namespace tiera
