#include "obs/pool_metrics.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

namespace tiera {

namespace {

// Live bindings, for render_pool_table(). Leaked for the same reason as the
// profile-stack registry: pool owners may be destroyed during teardown.
struct PoolList {
  std::mutex mu;
  std::vector<PoolMetrics*> pools;
};

PoolList& pool_list() {
  static PoolList* list = new PoolList;
  return *list;
}

struct PoolRow {
  std::string name;
  std::size_t size = 0;
  std::size_t active = 0;
  std::size_t queue = 0;
  std::uint64_t done = 0;
  double sojourn_p50_ms = 0;
  double sojourn_p99_ms = 0;
};

}  // namespace

class PoolMetricsAccess {
 public:
  static PoolRow row(const PoolMetrics& pm);
};

PoolMetrics::PoolMetrics(ThreadPool& pool, std::string label)
    : pool_(pool), label_(label.empty() ? pool.name() : std::move(label)) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const MetricsRegistry::Labels labels = {{"pool", label_}};
  queue_depth_ = &reg.gauge("tiera_pool_queue_depth", labels);
  active_ = &reg.gauge("tiera_pool_active", labels);
  size_ = &reg.gauge("tiera_pool_size", labels);
  sojourn_ = &reg.histogram("tiera_pool_sojourn_ms", labels);
  collector_id_ = reg.add_collector([this] { collect(); });
  {
    PoolList& list = pool_list();
    std::lock_guard lock(list.mu);
    list.pools.push_back(this);
  }
}

PoolMetrics::~PoolMetrics() {
  {
    PoolList& list = pool_list();
    std::lock_guard lock(list.mu);
    list.pools.erase(
        std::remove(list.pools.begin(), list.pools.end(), this),
        list.pools.end());
  }
  MetricsRegistry::global().remove_collector(collector_id_);
}

void PoolMetrics::collect() {
  queue_depth_->set(static_cast<double>(pool_.queue_depth()));
  active_->set(static_cast<double>(pool_.active()));
  size_->set(static_cast<double>(pool_.size()));
  sojourn_->merge_new_since(pool_.sojourn(), sojourn_cursor_);
}

PoolRow PoolMetricsAccess::row(const PoolMetrics& pm) {
  PoolRow r;
  r.name = pm.label_;
  r.size = pm.pool_.size();
  r.active = pm.pool_.active();
  r.queue = pm.pool_.queue_depth();
  const LatencyHistogram& sojourn = pm.pool_.sojourn();
  r.done = sojourn.count();
  r.sojourn_p50_ms = sojourn.percentile_ms(0.5);
  r.sojourn_p99_ms = sojourn.percentile_ms(0.99);
  return r;
}

std::string render_pool_table() {
  std::vector<PoolRow> rows;
  {
    PoolList& list = pool_list();
    std::lock_guard lock(list.mu);
    rows.reserve(list.pools.size());
    for (const PoolMetrics* pm : list.pools) {
      rows.push_back(PoolMetricsAccess::row(*pm));
    }
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-16s %6s %6s %6s %10s %12s %12s\n",
                "POOL", "SIZE", "ACT", "QUEUE", "DONE", "SOJ-P50ms",
                "SOJ-P99ms");
  out += line;
  for (const PoolRow& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-16s %6zu %6zu %6zu %10llu %12.3f %12.3f\n",
                  r.name.c_str(), r.size, r.active, r.queue,
                  static_cast<unsigned long long>(r.done), r.sojourn_p50_ms,
                  r.sojourn_p99_ms);
    out += line;
  }
  return out;
}

}  // namespace tiera
