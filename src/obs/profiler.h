// Sampling wall-clock profiler over Tiera's annotated threads.
//
// A capture spins up one sampler thread that wakes every `interval` and
// snapshots every registered ProfileStack (worker pools, RPC readers and
// request handlers, the control timer thread — any thread that touched an
// instrumented scope). Each snapshot folds into a
// `thread-name;frame;frame;...` key and bumps its count, so the result is
// perf-style folded stacks ready for flamegraph tooling:
//
//   rpc-requests;put;journal.append 412
//   rpc-requests;put;tier.io 187
//   tiera-responses;background;policy.eval;tier.io 44
//
// Safety: the sampler only reads atomics inside live ProfileStacks, under
// the stack registry lock (threads unregister before exit), so there is no
// signal handling, no unwinding, and nothing async-signal-unsafe — a
// capture is safe to trigger over RPC on a production instance. While no
// capture runs, instrumented scopes cost one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tiera {

class Profiler {
 public:
  static Profiler& global();

  // Starts a background capture. Fails if one is already running.
  // `interval_us` is clamped to [100, 1'000'000].
  Status start(std::uint64_t interval_us = 1000);
  // Stops the capture and returns the folded stacks accumulated since
  // start(). Safe to call when idle (returns whatever the last capture
  // left, possibly empty).
  std::string stop();

  // Blocking convenience used by the kProfile RPC verb: capture for
  // `duration_ms`, return folded output.
  Result<std::string> capture(std::uint64_t duration_ms,
                              std::uint64_t interval_us = 1000);

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Folded stacks of the current/last capture, "stack count" per line,
  // sorted by key for deterministic output.
  std::string folded() const;

  void reset();

 private:
  Profiler();
  void sampler_loop(std::uint64_t interval_us);

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counts_;  // folded key -> samples
  std::uint64_t total_samples_ = 0;
  std::thread sampler_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

// Renders folded stacks as a self-contained HTML flamegraph (pure
// HTML/CSS/JS, no external assets) for `tiera_cli profile
// --flamegraph-html`.
std::string render_flamegraph_html(const std::string& folded,
                                   const std::string& title);

}  // namespace tiera
