// Saturation gauges for a ThreadPool: queue depth, active workers, pool
// size, and task sojourn time, exported as
//   tiera_pool_queue_depth{pool=...}  tiera_pool_active{pool=...}
//   tiera_pool_size{pool=...}         tiera_pool_sojourn_ms{pool=...}
//
// Construct one next to (and declared after) the pool it watches, so the
// binding is destroyed first. Registration also adds the pool to a process
// list that render_pool_table() reads for `tiera_cli top`.
#pragma once

#include <cstdint>
#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace tiera {

class PoolMetrics {
 public:
  // `label` becomes the pool= label value; defaults to pool.name().
  explicit PoolMetrics(ThreadPool& pool, std::string label = "");
  ~PoolMetrics();

  PoolMetrics(const PoolMetrics&) = delete;
  PoolMetrics& operator=(const PoolMetrics&) = delete;

 private:
  friend class PoolMetricsAccess;  // render_pool_table()
  void collect();

  ThreadPool& pool_;
  std::string label_;
  Gauge* queue_depth_;
  Gauge* active_;
  Gauge* size_;
  LatencyHistogram* sojourn_;
  LatencyHistogram sojourn_cursor_;  // delta-sync cursor (merge_new_since)
  std::uint64_t collector_id_ = 0;
};

// One row per live PoolMetrics: pool name, size, active, queue depth,
// sojourn p50/p99. Appended to `tiera_cli top` output.
std::string render_pool_table();

}  // namespace tiera
