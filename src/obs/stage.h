// Hot-path cost attribution: per-stage latency breakdown for every
// application operation.
//
// The bench floor says an instance PUT burns ~87µs while a bare tier PUT is
// ~360ns — but until this subsystem nothing in the repo could measure where
// the other 86µs go. StageClock splits each PUT/GET/DELETE (and each
// background response) into named stages — `rpc.decode`, `policy.eval`,
// `metadata.lookup`, `journal.append`, `tier.io`, `response.build` — and
// aggregates them into per-(op, stage) latency histograms exposed as
// `tiera_op_stage_latency_ms{op,stage}`. Two derived series make the
// numbers self-checking:
//   * stage="other"  — whole-op time not covered by any named stage
//     (instrumentation gaps; should stay small), and
//   * stage="total"  — the whole-op span, recorded from the same sampled
//     ops, so Σ(named stages + other) ≈ total by construction and
//     Σ(named stages) / total is the attribution coverage.
//
// Accounting model: stages nest (a response fired under `policy.eval` does
// tier I/O and metadata updates), and each stage is charged its *self*
// time — time spent in a nested stage is charged to the inner stage only.
// The per-thread state is a small stack plus a segment clock; a push
// charges the elapsed segment to the parent, a pop charges it to the
// popped stage.
//
// Overhead: recording is sampled 1-in-N per thread (default 8, like the
// tier latency sampling; `TIERA_STAGE_SAMPLE_N` or set_stage_sample_every()
// override — 1 records every op for bench-grade breakdowns, 0 disables).
// A non-sampled op costs one thread-local branch per stage scope; a sampled
// PUT costs ~25 steady-clock reads, well under the repo's 5% hot-path
// budget. Stage scopes double as profiler frames (see obs/profiler.h), so
// folded stacks name the same taxonomy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/profile_stack.h"

namespace tiera {

enum class Stage : std::uint8_t {
  kRpcDecode = 0,
  kPolicyEval,
  kMetadataLookup,
  kJournalAppend,
  kTierIo,
  kResponseBuild,
  // Derived at flush time, never passed to StageTimer:
  kOther,  // whole-op minus every named stage (instrumentation gap)
  kTotal,  // the whole-op span
};
inline constexpr int kNamedStageCount = 6;
inline constexpr int kStageSlotCount = 8;  // named + other + total
const char* stage_name(Stage stage);

enum class StageOp : std::uint8_t {
  kPut = 0,
  kGet,
  kDelete,
  kBackground,  // control-layer responses and timer/threshold firings
};
inline constexpr int kStageOpCount = 4;
const char* stage_op_name(StageOp op);

// Effective sampling rate (ops between recorded breakdowns; 0 = disabled).
// First read consults TIERA_STAGE_SAMPLE_N; set_stage_sample_every()
// overrides at runtime (benches record unsampled with 1). The live value is
// exported as the `tiera_stage_sample_every` gauge.
std::uint64_t stage_sample_every();
void set_stage_sample_every(std::uint64_t n);

// True when the calling thread is inside a recording (sampled) op scope.
bool stage_recording_active();

// RAII over one whole application operation. The outermost scope on a
// thread owns the breakdown; nested scopes (an instance PUT served under an
// RPC op scope, a put() issued by a background response) are inert, so
// their stages fold into the enclosing op. Flushes to the registry on
// destruction.
class OpStageScope {
 public:
  explicit OpStageScope(StageOp op);
  ~OpStageScope();

  OpStageScope(const OpStageScope&) = delete;
  OpStageScope& operator=(const OpStageScope&) = delete;

  bool recording() const { return recording_; }

 private:
  bool owner_ = false;      // outermost scope on this thread
  bool recording_ = false;  // owner and sampled
  bool pushed_frame_ = false;
};

// RAII over one named stage within the current op. Cheap no-op when the
// thread has no recording op scope. Also pushes a profiler frame while a
// capture is running, so stage names appear in folded stacks even on
// threads whose ops were not stage-sampled.
class StageTimer {
 public:
  explicit StageTimer(Stage stage);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  bool recording_ = false;
  bool pushed_frame_ = false;
};

// One (op, stage) aggregate read back from the registry histograms.
struct StageRow {
  std::string op;
  std::string stage;
  std::uint64_t count = 0;
  double sum_ms = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// Snapshot of every (op, stage) series with at least one sample.
std::vector<StageRow> stage_breakdown();

// Human-readable per-op stage table with a reconciliation line per op:
// coverage = Σ named-stage time / total time, gap = other / total.
std::string render_stage_report();

// Worst-op absolute reconciliation error: |Σ(named+other) - total| / total
// across ops with samples (0 when nothing was recorded). Σ(named+other)
// equals total by construction, so anything beyond double-rounding noise
// means the accounting itself is broken; CI asserts this stays under 10%.
double stage_reconciliation_error();

// Worst-op attribution gap: max over ops of other/total (0 when nothing was
// recorded). This is the instrumentation-coverage number the stage smoke
// gate watches.
double stage_attribution_gap();

}  // namespace tiera
