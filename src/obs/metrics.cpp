#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace tiera {

namespace {

std::uint64_t round_up_pow2(std::uint64_t n) {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t env_latency_sample_every() {
  if (const char* env = std::getenv("TIERA_LATENCY_SAMPLE_N")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end && *end == '\0') {
      return v == 0 ? 0 : round_up_pow2(static_cast<std::uint64_t>(v));
    }
  }
  return kLatencySampleEvery;
}

std::atomic<std::uint64_t>& latency_sample_atomic() {
  static std::atomic<std::uint64_t>& value = []() -> std::atomic<std::uint64_t>& {
    static std::atomic<std::uint64_t> v{env_latency_sample_every()};
    MetricsRegistry::global()
        .gauge("tiera_latency_sample_every")
        .set(static_cast<double>(v.load(std::memory_order_relaxed)));
    return v;
  }();
  return value;
}

const double kQuantiles[] = {0.5, 0.9, 0.95, 0.99};

// Prometheus label values escape backslash, double quote, and newline.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Canonical rendering of a label set: `tier="m1",op="put"`, keys sorted.
std::string render_labels(MetricsRegistry::Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  return out;
}

// `name{labels}` or `name{labels,extra}`; plain `name` when both empty.
std::string series_name(const std::string& name, const std::string& labels,
                        const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::uint64_t latency_sample_every() {
  return latency_sample_atomic().load(std::memory_order_relaxed);
}

void set_latency_sample_every(std::uint64_t n) {
  if (n != 0) n = round_up_pow2(n);
  latency_sample_atomic().store(n, std::memory_order_relaxed);
  MetricsRegistry::global()
      .gauge("tiera_latency_sample_every")
      .set(static_cast<double>(n));
}

std::uint64_t latency_sample_mask() {
  const std::uint64_t every =
      latency_sample_atomic().load(std::memory_order_relaxed);
  return every == 0 ? ~std::uint64_t{0} : every - 1;
}

MetricsRegistry::Series& MetricsRegistry::get_or_create(Kind kind,
                                                        std::string_view name,
                                                        const Labels& labels) {
  const std::string label_key = render_labels(labels);
  std::lock_guard lock(mu_);
  auto [fam_it, fam_created] = families_.try_emplace(std::string(name));
  Family& family = fam_it->second;
  if (fam_created) family.kind = kind;
  if (family.kind != kind) {
    // Kind conflict: a bug in instrumentation code, but a serving instance
    // must not crash — hand back a detached metric instead.
    TIERA_LOG(kError, "obs")
        << "metric '" << std::string(name) << "' re-registered with a "
        << "different kind; returning detached metric";
    static Series detached = [] {
      Series s;
      s.counter = std::make_unique<Counter>();
      s.gauge = std::make_unique<Gauge>();
      s.histogram = std::make_unique<LatencyHistogram>();
      return s;
    }();
    return detached;
  }
  auto [it, created] = family.series.try_emplace(label_key);
  if (created) {
    switch (kind) {
      case Kind::kCounter: it->second.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: it->second.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        it->second.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  return *get_or_create(Kind::kCounter, name, labels).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return *get_or_create(Kind::kGauge, name, labels).gauge;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name,
                                             const Labels& labels) {
  return *get_or_create(Kind::kHistogram, name, labels).histogram;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

MetricsRegistry::CollectorId MetricsRegistry::add_collector(
    std::function<void()> fn) {
  std::lock_guard lock(collectors_mu_);
  const CollectorId id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(CollectorId id) {
  std::lock_guard lock(collectors_mu_);
  collectors_.erase(id);
}

void MetricsRegistry::collect() const {
  std::lock_guard lock(collectors_mu_);
  for (const auto& [id, fn] : collectors_) fn();
}

std::string MetricsRegistry::render_prometheus() const {
  collect();
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# TYPE ";
    out += name;
    switch (family.kind) {
      case Kind::kCounter: out += " counter\n"; break;
      case Kind::kGauge: out += " gauge\n"; break;
      case Kind::kHistogram: out += " summary\n"; break;
    }
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += series_name(name, labels) + ' ' +
                 std::to_string(series.counter->value()) + '\n';
          break;
        case Kind::kGauge:
          out += series_name(name, labels) + ' ' +
                 format_value(series.gauge->value()) + '\n';
          break;
        case Kind::kHistogram: {
          const LatencyHistogram& hist = *series.histogram;
          for (const double q : kQuantiles) {
            out += series_name(name, labels,
                               "quantile=\"" + format_value(q) + "\"") +
                   ' ' + format_value(hist.percentile_ms(q)) + '\n';
          }
          out += series_name(name + "_sum", labels) + ' ' +
                 format_value(hist.sum_ms()) + '\n';
          out += series_name(name + "_count", labels) + ' ' +
                 std::to_string(hist.count()) + '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::render_text() const {
  collect();
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, series] : family.series) {
      out += series_name(name, labels) + " = ";
      switch (family.kind) {
        case Kind::kCounter:
          out += std::to_string(series.counter->value());
          break;
        case Kind::kGauge:
          out += format_value(series.gauge->value());
          break;
        case Kind::kHistogram:
          out += series.histogram->summary();
          break;
      }
      out += '\n';
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace tiera
