// SLO engine: windowed latency/error objectives as first-class signals.
//
// The paper frames every evaluation in latency goals per workload (MySQL,
// TPC-W, YCSB — §4), yet its prototype never lets an instance *see* its own
// latency. This module closes that loop: objectives declared in the spec
// grammar (`slo get_p99 < 2ms window 60s burn 5m/1h`) are measured here over
// sliding windows and surfaced three ways — Prometheus series
// (`tiera_slo_{current,target,violated,burn_rate}`), threshold events
// (`slo.get_p99 == violated`) that existing rules react to with grow/move/
// copy responses, and the `kSlo` RPC behind `tiera_cli slo`.
//
// Window mechanics: each objective keeps time-sliced log-bucketed histogram
// rings (60 slices per window). A slice is claimed for the current epoch
// (epoch = time / slice_length) with a CAS and zeroed by the winner, so
// rotation is O(1) and the hot path takes no locks — samples racing a
// rotation may land in a slice being zeroed and get dropped, which is
// acceptable sampling loss for statistics (same stance as LatencyHistogram).
// Readers only trust a slice whose epoch matches the one expected for its
// ring slot, which also makes simulated clock jumps (forwards or backwards)
// self-healing instead of corrupting quantiles.
//
// Burn rates follow the SRE-workbook multiwindow scheme: a sample is "bad"
// at record time (latency over target, or a failed op), and two longer
// count-only rings (default 5m/1h) report bad-fraction divided by the error
// budget — burn rate 1.0 means the budget exactly runs out over the window.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace tiera {

// What an objective measures. Latency signals target a quantile of the
// instance's PUT or GET latency; kErrorRate targets the failed fraction of
// all operations.
enum class SloSignal {
  kGetP50,
  kGetP95,
  kGetP99,
  kPutP50,
  kPutP95,
  kPutP99,
  kErrorRate,
};

std::string_view to_string(SloSignal signal);
// "get_p99" -> kGetP99 etc.; false when the name is not a known signal.
bool slo_signal_from_name(std::string_view name, SloSignal* out);
// The quantile a latency signal targets (0.99 for kGetP99); 0 for
// kErrorRate.
double slo_quantile(SloSignal signal);
bool slo_is_latency(SloSignal signal);
bool slo_is_get(SloSignal signal);

// One declared objective. `name` is the spec text of the metric
// ("get_p99", or "tier2.get_p99" for a per-tier objective) and doubles as
// the identity used by `slo.<name> == violated` events and the {slo=...}
// metric label.
struct SloSpec {
  std::string name;
  SloSignal signal = SloSignal::kGetP99;
  // Restrict to operations served by this tier (empty = whole instance).
  std::string tier;
  // Latency signals: target in milliseconds of modelled time.
  double target_ms = 0;
  // kErrorRate: target failed fraction in (0,1).
  double target_fraction = 0;
  // Evaluation window (modelled time; scaled like timer periods).
  Duration window = std::chrono::seconds(60);
  // Burn-rate windows (short/long), modelled time.
  Duration burn_short = std::chrono::minutes(5);
  Duration burn_long = std::chrono::hours(1);
};

// A lock-free ring of time slices, each an independent coarse log-bucketed
// histogram plus total/bad counters. All methods take explicit time points
// so tests can replay rotations and clock jumps deterministically.
class SloWindowRing {
 public:
  // ~7.5% relative bucket width covering 1us .. ~100s; coarse on purpose —
  // a slice is 256 * 4 bytes of buckets, and 60 of them per objective.
  static constexpr int kBucketCount = 256;

  SloWindowRing(int slices, Duration slice_len);

  void record(TimePoint t, double latency_ms, bool bad);
  // Counters only, no latency bucket — for rings that are read exclusively
  // through bad_fraction() (the burn-rate windows). Skips the log() bucket
  // math and the bucket cache line on the hot path.
  void record_counts(TimePoint t, bool bad);

  // Aggregates over the slices still valid at `t`.
  std::uint64_t total(TimePoint t) const;
  std::uint64_t bad(TimePoint t) const;
  // Latency quantile across the window; 0 when the window holds no samples.
  double percentile_ms(TimePoint t, double q) const;
  // bad/total; 0 when empty.
  double bad_fraction(TimePoint t) const;

  Duration slice_len() const { return slice_len_; }
  int slices() const { return slice_count_; }

 private:
  struct Slice {
    std::atomic<std::int64_t> epoch{-1};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> bad{0};
    std::atomic<std::uint32_t> buckets[kBucketCount];
  };

  static int bucket_for(double latency_ms);
  static double bucket_upper_ms(int bucket);

  std::int64_t epoch_of(TimePoint t) const;
  // Claims the slot for `epoch` (zeroing stale contents); returns the slice.
  Slice& refresh(std::int64_t epoch);
  // Visits every slice whose epoch lies in (epoch(t) - slices, epoch(t)].
  template <typename Fn>
  void for_valid(TimePoint t, Fn&& fn) const;

  const int slice_count_;
  const Duration slice_len_;
  std::unique_ptr<Slice[]> slices_;
};

// Point-in-time view of one objective, for `top`, the kSlo RPC and tests.
struct SloStatus {
  std::string name;
  std::string tier;       // empty = instance-wide
  std::string signal;     // to_string(SloSignal)
  bool is_latency = true;
  double target = 0;      // ms (latency) or fraction (error rate)
  double current = 0;     // same unit as target
  double window_s = 0;    // modelled window length
  std::uint64_t samples = 0;
  double burn_short = 0;  // error-budget burn rate over the short window
  double burn_long = 0;   // ... and the long window
  bool violated = false;
  std::uint64_t violations = 0;  // compliant -> violated transitions
};

// All objectives of one instance. The record path is wait-free: a single
// acquire load of the objective list (copy-on-write, like the instance's
// per-tier hit counters) and, per matching objective, three relaxed
// fetch_adds. Evaluation runs on the control layer's timer tick and
// publishes gauges into the global MetricsRegistry.
class SloEngine {
 public:
  explicit SloEngine(std::string instance_name);

  // Registers an objective (and its `tiera_slo_*` series). Rejects
  // duplicate names and non-positive targets/windows. The effective time
  // scale is frozen at add time (mirroring how timer rules scale their
  // periods): window geometry is scaled down to wall time, and recorded
  // wall-clock latencies are scaled back up to modelled time, so
  // `target_ms` and every published latency stay in modelled milliseconds
  // regardless of the scale.
  Status add(const SloSpec& spec);

  std::size_t size() const;

  // --- Hot path --------------------------------------------------------------
  // `latency` is measured wall-clock time; each objective converts it to
  // modelled time with its frozen scale before bucketing and bad-sample
  // classification.
  void record_put(Duration latency, std::string_view tier, bool ok) {
    record(/*is_get=*/false, latency, tier, ok);
  }
  void record_get(Duration latency, std::string_view tier, bool ok) {
    record(/*is_get=*/true, latency, tier, ok);
  }

  // --- Evaluation ------------------------------------------------------------
  // Recomputes every objective at `t`, refreshes the published gauges, and
  // returns true when any objective's violated state flipped (the caller
  // then re-evaluates threshold rules so `slo.* == violated` events fire
  // edge-accurately).
  bool evaluate(TimePoint t);
  bool evaluate() { return evaluate(now()); }

  // 1.0 when the named objective is currently violated, else 0 (unknown
  // names read as 0). This is the value threshold rules compare against.
  double violated_value(std::string_view name) const;

  std::vector<SloStatus> status(TimePoint t) const;
  std::vector<SloStatus> status() const { return status(now()); }

 private:
  struct Tracker {
    SloSpec spec;
    bool is_get = false;
    double quantile = 0;      // 0 for error-rate objectives
    double budget = 0;        // error budget: 1-q (latency) or target
    // Converts recorded wall-clock latency into modelled ms: 1/time_scale,
    // frozen at add() alongside the window geometry.
    double wall_to_model = 1.0;
    SloWindowRing window;
    SloWindowRing burn_short;
    SloWindowRing burn_long;
    std::atomic<bool> violated{false};
    std::atomic<std::uint64_t> violations{0};

    // Published series ({slo,instance,tier} labels).
    Gauge* current_gauge = nullptr;
    Gauge* target_gauge = nullptr;
    Gauge* violated_gauge = nullptr;
    Gauge* burn_short_gauge = nullptr;  // extra label window="<short>"
    Gauge* burn_long_gauge = nullptr;   // extra label window="<long>"
    Counter* violations_counter = nullptr;

    Tracker(SloSpec s, double scale, int slices, Duration window_slice,
            Duration short_slice, Duration long_slice);
    double current_value(TimePoint t) const;
    bool over_target(double current) const;
  };
  using TrackerList = std::vector<std::shared_ptr<Tracker>>;

  void record(bool is_get, Duration latency, std::string_view tier, bool ok);

  const std::string instance_name_;
  // Copy-on-write list: readers load once, writers swap under the mutex.
  // Retired lists are kept until the engine dies so a racing reader never
  // chases a freed vector.
  std::atomic<const TrackerList*> trackers_{nullptr};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<const TrackerList>> retired_;
};

}  // namespace tiera
