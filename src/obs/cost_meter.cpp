#include "obs/cost_meter.h"

#include <algorithm>

namespace tiera {

namespace {

constexpr double kGb = 1024.0 * 1024.0 * 1024.0;

double per_op_dollars(const CostRates& rates, std::uint64_t puts,
                      std::uint64_t gets, std::uint64_t removes) {
  const double ios = static_cast<double>(puts + gets + removes);
  return static_cast<double>(puts) * rates.dollars_per_put +
         static_cast<double>(gets) * rates.dollars_per_get +
         ios * rates.dollars_per_io;
}

}  // namespace

CostMeter::CostMeter(std::string instance_name)
    : instance_name_(std::move(instance_name)) {
  auto& reg = MetricsRegistry::global();
  total_gauge_ = &reg.gauge("tiera_cost_total_dollars");
  burn_gauge_ = &reg.gauge("tiera_cost_monthly_burn_dollars");
}

CostMeter::~CostMeter() = default;

void CostMeter::add_tier(std::string_view label, const CostRates& rates) {
  std::lock_guard lock(mu_);
  const AccountList* current = accounts_.load(std::memory_order_acquire);
  if (current != nullptr) {
    for (const auto& account : *current) {
      if (account->label == label) {
        account->rates = rates;  // refresh; spend history stays
        return;
      }
    }
  }
  auto account = std::make_shared<Account>();
  account->label.assign(label.data(), label.size());
  account->rates = rates;
  auto& reg = MetricsRegistry::global();
  const MetricsRegistry::Labels labels = {{"tier", account->label}};
  account->read_bytes_counter =
      &reg.counter("tiera_tier_read_bytes_total", labels);
  account->write_bytes_counter =
      &reg.counter("tiera_tier_write_bytes_total", labels);
  account->storage_gauge = &reg.gauge("tiera_cost_storage_dollars", labels);
  account->request_gauge = &reg.gauge("tiera_cost_request_dollars", labels);
  account->egress_gauge = &reg.gauge("tiera_cost_egress_dollars", labels);
  auto next = std::make_unique<AccountList>();
  if (current != nullptr) *next = *current;
  next->push_back(std::move(account));
  accounts_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
}

CostMeter::Account* CostMeter::find_account(std::string_view label) const {
  const AccountList* list = accounts_.load(std::memory_order_acquire);
  if (list == nullptr) return nullptr;
  for (const auto& account : *list) {
    if (account->label == label) return account.get();
  }
  return nullptr;
}

void CostMeter::record_client_read(std::string_view tier, std::uint64_t bytes) {
  if (Account* account = find_account(tier)) {
    account->read_bytes_counter->inc(bytes);
  }
}

void CostMeter::record_client_write(std::string_view tier,
                                    std::uint64_t bytes) {
  if (Account* account = find_account(tier)) {
    account->write_bytes_counter->inc(bytes);
  }
}

CostMeter::RuleAccount& CostMeter::rule_account(std::uint64_t id,
                                                std::string_view name) {
  for (auto& rule : rules_) {
    if (rule->id == id) return *rule;
  }
  auto rule = std::make_unique<RuleAccount>();
  rule->id = id;
  rule->name.assign(name.data(), name.size());
  if (rule->name.empty() && id == 0) rule->name = "unattributed";
  rule->dollars_gauge = &MetricsRegistry::global().gauge(
      "tiera_cost_rule_dollars",
      {{"rule", std::to_string(id)}, {"name", rule->name}});
  rules_.push_back(std::move(rule));
  return *rules_.back();
}

void CostMeter::record_rule_move(std::uint64_t rule_id,
                                 std::string_view rule_name,
                                 std::string_view src_tier,
                                 std::string_view dest_tier,
                                 std::uint64_t bytes, std::uint64_t objects) {
  std::lock_guard lock(mu_);
  double dollars = 0;
  if (Account* dest = find_account(dest_tier)) {
    dollars += per_op_dollars(dest->rates, /*puts=*/objects, /*gets=*/0,
                              /*removes=*/0);
  }
  if (!src_tier.empty()) {
    if (Account* src = find_account(src_tier)) {
      dollars += per_op_dollars(src->rates, /*puts=*/0, /*gets=*/objects,
                                /*removes=*/0);
      dollars += static_cast<double>(bytes) / kGb *
                 src->rates.dollars_per_gb_egress;
      // The tier ledger bills this egress too (attribution view vs ledger —
      // see file comment); stage it for the next accrue().
      src->rule_egress_bytes += bytes;
    }
  }
  RuleAccount& rule = rule_account(rule_id, rule_name);
  rule.bytes += bytes;
  rule.objects += objects;
  rule.dollars += dollars;
  rule.dollars_gauge->set(rule.dollars);
}

void CostMeter::accrue(const std::vector<TierUsage>& usage,
                       Duration modelled_elapsed) {
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          modelled_elapsed)
          .count();
  if (elapsed_s <= 0) return;
  std::lock_guard lock(mu_);
  modelled_seconds_ += elapsed_s;
  const double months = elapsed_s / kCostMeterSecondsPerMonth;
  double total = 0;
  double burn = 0;
  const AccountList* list = accounts_.load(std::memory_order_acquire);
  if (list == nullptr) return;
  for (const auto& account : *list) {
    const TierUsage* used = nullptr;
    for (const auto& u : usage) {
      if (u.label == account->label) {
        used = &u;
        break;
      }
    }
    double interval_dollars = 0;
    double storage_month_rate = 0;
    if (used != nullptr) {
      const double billable_gb =
          static_cast<double>(account->rates.bill_by_capacity
                                  ? used->capacity_bytes
                                  : used->used_bytes) /
          kGb;
      storage_month_rate = billable_gb * account->rates.dollars_per_gb_month;
      const double storage_delta = storage_month_rate * months;
      account->storage_dollars += storage_delta;
      interval_dollars += storage_delta;

      const double request_delta = per_op_dollars(
          account->rates, used->puts - account->billed_puts,
          used->gets - account->billed_gets,
          used->removes - account->billed_removes);
      account->billed_puts = used->puts;
      account->billed_gets = used->gets;
      account->billed_removes = used->removes;
      account->request_dollars += request_delta;
      interval_dollars += request_delta;
    }
    const std::uint64_t egress_bytes =
        account->read_bytes_counter->value() + account->rule_egress_bytes;
    if (egress_bytes > account->billed_egress_bytes) {
      const double egress_delta =
          static_cast<double>(egress_bytes - account->billed_egress_bytes) /
          kGb * account->rates.dollars_per_gb_egress;
      account->billed_egress_bytes = egress_bytes;
      account->egress_dollars += egress_delta;
      interval_dollars += egress_delta;
    }
    // Burn: storage burns at the occupancy-determined rate; request/egress
    // burn extrapolates this interval's activity to a month.
    account->monthly_burn =
        storage_month_rate + (interval_dollars - storage_month_rate * months) /
                                 elapsed_s * kCostMeterSecondsPerMonth;
    account->storage_gauge->set(account->storage_dollars);
    account->request_gauge->set(account->request_dollars);
    account->egress_gauge->set(account->egress_dollars);
    total += account->storage_dollars + account->request_dollars +
             account->egress_dollars;
    burn += account->monthly_burn;
  }
  total_gauge_->set(total);
  burn_gauge_->set(burn);
}

CostSnapshot CostMeter::snapshot() const {
  CostSnapshot snap;
  std::lock_guard lock(mu_);
  snap.modelled_seconds = modelled_seconds_;
  const AccountList* list = accounts_.load(std::memory_order_acquire);
  if (list != nullptr) {
    for (const auto& account : *list) {
      TierCostSnapshot tier;
      tier.tier = account->label;
      tier.storage_dollars = account->storage_dollars;
      tier.request_dollars = account->request_dollars;
      tier.egress_dollars = account->egress_dollars;
      tier.monthly_burn_dollars = account->monthly_burn;
      tier.client_read_bytes = account->read_bytes_counter->value();
      tier.client_write_bytes = account->write_bytes_counter->value();
      snap.total_dollars += tier.total();
      snap.monthly_burn_dollars += tier.monthly_burn_dollars;
      snap.tiers.push_back(std::move(tier));
    }
  }
  for (const auto& rule : rules_) {
    RuleCostSnapshot r;
    r.rule_id = rule->id;
    r.rule_name = rule->name;
    r.bytes_moved = rule->bytes;
    r.objects_moved = rule->objects;
    r.dollars = rule->dollars;
    snap.rules.push_back(std::move(r));
  }
  std::sort(snap.rules.begin(), snap.rules.end(),
            [](const RuleCostSnapshot& a, const RuleCostSnapshot& b) {
              return a.dollars > b.dollars;
            });
  return snap;
}

}  // namespace tiera
