#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/logging.h"
#include "obs/metrics.h"

namespace tiera {

namespace {

void copy_truncated(char* dest, std::size_t dest_size, std::string_view src) {
  const std::size_t n = std::min(src.size(), dest_size - 1);
  std::memcpy(dest, src.data(), n);
  dest[n] = '\0';
}

std::int64_t to_us_ticks(TimePoint t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

double env_slow_op_ms() {
  const char* value = std::getenv("TIERA_SLOW_OP_MS");
  if (!value || !*value) return 0;
  const double ms = std::atof(value);
  return ms > 0 ? ms : 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view chrome_category(TraceOp op) {
  switch (op) {
    case TraceOp::kEvent: return "policy";
    case TraceOp::kResponse: return "response";
    case TraceOp::kRetry:
    case TraceOp::kHedge: return "resilience";
    default: return "request";
  }
}

}  // namespace

std::string_view to_string(TraceOp op) {
  switch (op) {
    case TraceOp::kPut: return "PUT";
    case TraceOp::kGet: return "GET";
    case TraceOp::kDelete: return "DELETE";
    case TraceOp::kEvent: return "EVENT";
    case TraceOp::kResponse: return "RESPONSE";
    case TraceOp::kRetry: return "RETRY";
    case TraceOp::kHedge: return "HEDGE";
  }
  return "?";
}

RequestTracer::RequestTracer(std::size_t capacity)
    : slots_(capacity ? capacity : 1),
      dropped_counter_(
          &MetricsRegistry::global().counter("tiera_trace_dropped_total")) {
  slow_op_ms_.store(env_slow_op_ms(), std::memory_order_relaxed);
}

std::size_t RequestTracer::capacity_from_env(std::size_t fallback) {
  const char* value = std::getenv("TIERA_TRACE_CAPACITY");
  if (!value || !*value) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

void RequestTracer::fill_slot(Span span) {
  span.seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[span.seq % slots_.size()];
  bool overwrote = false;
  {
    std::lock_guard lock(slot.mu);
    overwrote = slot.valid;
    slot.span = span;
    slot.valid = true;
  }
  if (overwrote) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_counter_->inc();
  }
  maybe_log_slow(span);
}

void RequestTracer::record(TraceOp op, std::string_view object_id,
                           std::string_view tier, Duration latency, bool ok) {
  if (!enabled()) return;
  const TraceContext ctx = current_trace_context();
  Span span;
  span.trace_id = ctx.valid() ? ctx.trace_id : next_trace_id();
  span.span_id = next_span_id();
  span.parent_span_id = ctx.valid() ? ctx.span_id : 0;
  span.op = op;
  copy_truncated(span.name, sizeof(span.name), to_string(op));
  copy_truncated(span.object_id, sizeof(span.object_id), object_id);
  copy_truncated(span.tier, sizeof(span.tier), tier);
  span.start_us = to_us_ticks(now() - latency);
  span.duration_ms = to_ms(latency);
  span.ok = ok;
  fill_slot(span);
}

void RequestTracer::record(const TraceScope& scope, TraceOp op,
                           std::string_view name, std::string_view object_id,
                           std::string_view tier, bool ok,
                           std::uint64_t rule_id) {
  if (!enabled()) return;
  Span span;
  span.trace_id = scope.trace_id();
  span.span_id = scope.span_id();
  span.parent_span_id = scope.parent_span_id();
  span.rule_id = rule_id;
  span.op = op;
  copy_truncated(span.name, sizeof(span.name),
                 name.empty() ? to_string(op) : name);
  copy_truncated(span.object_id, sizeof(span.object_id), object_id);
  copy_truncated(span.tier, sizeof(span.tier), tier);
  span.start_us = to_us_ticks(scope.start());
  span.duration_ms = to_ms(scope.elapsed());
  span.ok = ok;
  fill_slot(span);
}

std::vector<RequestTracer::Span> RequestTracer::snapshot(
    std::size_t last_n) const {
  std::vector<Span> spans;
  spans.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    std::lock_guard lock(slot.mu);
    if (slot.valid) spans.push_back(slot.span);
  }
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.seq < b.seq; });
  if (last_n < spans.size()) {
    spans.erase(spans.begin(),
                spans.begin() + static_cast<std::ptrdiff_t>(spans.size() - last_n));
  }
  return spans;
}

std::string RequestTracer::dump(std::size_t last_n) const {
  const std::vector<Span> spans = snapshot(last_n);
  std::string out;
  for (const Span& span : spans) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "#%llu %-8s %-24s tier=%-12s %8.3fms %-6s trace=%llu "
                  "span=%llu parent=%llu%s%s\n",
                  static_cast<unsigned long long>(span.seq),
                  std::string(to_string(span.op)).c_str(),
                  span.object_id[0] ? span.object_id : span.name,
                  span.tier[0] ? span.tier : "-", span.duration_ms,
                  span.ok ? "ok" : "FAILED",
                  static_cast<unsigned long long>(span.trace_id),
                  static_cast<unsigned long long>(span.span_id),
                  static_cast<unsigned long long>(span.parent_span_id),
                  span.op == TraceOp::kEvent || span.op == TraceOp::kResponse
                      ? " "
                      : "",
                  span.op == TraceOp::kEvent || span.op == TraceOp::kResponse
                      ? span.name
                      : "");
    out += line;
  }
  if (out.empty()) out = "(no requests traced)\n";
  return out;
}

std::string RequestTracer::dump_chrome(std::size_t last_n) const {
  return render_chrome_trace(snapshot(last_n));
}

std::string RequestTracer::dump_tree(std::uint64_t trace_id) const {
  std::vector<Span> spans = snapshot(slots_.size());
  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [trace_id](const Span& s) {
                               return s.trace_id != trace_id;
                             }),
              spans.end());
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.start_us < b.start_us;
  });
  // parent span id -> children, insertion (= start) order preserved.
  std::map<std::uint64_t, std::vector<const Span*>> children;
  for (const Span& span : spans) children[span.parent_span_id].push_back(&span);

  std::string out;
  const auto render = [&](const Span& span, int depth, const auto& self) -> void {
    char line[256];
    std::snprintf(line, sizeof(line), "%*s%s %s%s%s tier=%s %.3fms %s\n",
                  depth * 2, "", std::string(to_string(span.op)).c_str(),
                  span.name, span.object_id[0] ? " " : "", span.object_id,
                  span.tier[0] ? span.tier : "-", span.duration_ms,
                  span.ok ? "ok" : "FAILED");
    out += line;
    const auto it = children.find(span.span_id);
    if (it == children.end()) return;
    for (const Span* child : it->second) self(*child, depth + 1, self);
  };
  // Roots: parent 0, or parent no longer in the ring (evicted).
  std::vector<bool> has_parent(spans.size(), false);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (const Span& other : spans) {
      if (spans[i].parent_span_id == other.span_id) {
        has_parent[i] = true;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (!has_parent[i]) render(spans[i], 0, render);
  }
  if (out.empty()) out = "(trace not in ring)\n";
  return out;
}

void RequestTracer::maybe_log_slow(const Span& span) {
  const double threshold = slow_op_ms_.load(std::memory_order_relaxed);
  if (threshold <= 0 || span.duration_ms < threshold) return;
  // Only completed roots (requests, timer/threshold firings) and rule
  // events log: their subtree is complete at this point, and per-response
  // children would double-log the same trace.
  if (span.parent_span_id != 0 && span.op != TraceOp::kEvent) return;
  TIERA_LOG(kWarn, "trace") << "slow op (" << span.duration_ms << "ms >= "
                            << threshold << "ms) trace " << span.trace_id
                            << ":\n" << dump_tree(span.trace_id);
}

std::string render_chrome_trace(
    const std::vector<RequestTracer::Span>& spans) {
  std::vector<const RequestTracer::Span*> ordered;
  ordered.reserve(spans.size());
  for (const auto& span : spans) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const RequestTracer::Span* a, const RequestTracer::Span* b) {
              return a->start_us != b->start_us ? a->start_us < b->start_us
                                                : a->seq < b->seq;
            });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const RequestTracer::Span* span : ordered) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%llu,\"args\":{\"trace\":%llu,"
        "\"span\":%llu,\"parent\":%llu,\"rule\":%llu,\"object\":\"%s\","
        "\"tier\":\"%s\",\"ok\":%s}}",
        first ? "" : ",", json_escape(span->name).c_str(),
        std::string(chrome_category(span->op)).c_str(),
        static_cast<long long>(span->start_us), span->duration_ms * 1000.0,
        static_cast<unsigned long long>(span->trace_id),
        static_cast<unsigned long long>(span->trace_id),
        static_cast<unsigned long long>(span->span_id),
        static_cast<unsigned long long>(span->parent_span_id),
        static_cast<unsigned long long>(span->rule_id),
        json_escape(span->object_id).c_str(), json_escape(span->tier).c_str(),
        span->ok ? "true" : "false");
    out += buf;
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace tiera
