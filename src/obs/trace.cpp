#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace tiera {

namespace {

void copy_truncated(char* dest, std::size_t dest_size, std::string_view src) {
  const std::size_t n = std::min(src.size(), dest_size - 1);
  std::memcpy(dest, src.data(), n);
  dest[n] = '\0';
}

}  // namespace

std::string_view to_string(TraceOp op) {
  switch (op) {
    case TraceOp::kPut: return "PUT";
    case TraceOp::kGet: return "GET";
    case TraceOp::kDelete: return "DELETE";
  }
  return "?";
}

RequestTracer::RequestTracer(std::size_t capacity)
    : slots_(capacity ? capacity : 1) {}

void RequestTracer::record(TraceOp op, std::string_view object_id,
                           std::string_view tier, Duration latency, bool ok) {
  if (!enabled()) return;
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];
  std::lock_guard lock(slot.mu);
  slot.span.seq = seq;
  slot.span.op = op;
  copy_truncated(slot.span.object_id, sizeof(slot.span.object_id), object_id);
  copy_truncated(slot.span.tier, sizeof(slot.span.tier), tier);
  slot.span.duration_ms = to_ms(latency);
  slot.span.ok = ok;
  slot.valid = true;
}

std::vector<RequestTracer::Span> RequestTracer::snapshot(
    std::size_t last_n) const {
  std::vector<Span> spans;
  spans.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    std::lock_guard lock(slot.mu);
    if (slot.valid) spans.push_back(slot.span);
  }
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.seq < b.seq; });
  if (last_n < spans.size()) {
    spans.erase(spans.begin(),
                spans.begin() + static_cast<std::ptrdiff_t>(spans.size() - last_n));
  }
  return spans;
}

std::string RequestTracer::dump(std::size_t last_n) const {
  const std::vector<Span> spans = snapshot(last_n);
  std::string out;
  for (const Span& span : spans) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "#%llu %-6s %-24s tier=%-12s %8.3fms %s\n",
                  static_cast<unsigned long long>(span.seq),
                  std::string(to_string(span.op)).c_str(), span.object_id,
                  span.tier[0] ? span.tier : "-", span.duration_ms,
                  span.ok ? "ok" : "FAILED");
    out += line;
  }
  if (out.empty()) out = "(no requests traced)\n";
  return out;
}

}  // namespace tiera
