// Per-object access-heat tracking in fixed memory.
//
// ROADMAP items 1 (hot-key promotion) and 3 (cost-aware placement) both need
// the answer to "which objects are hot, per tier, right now" — but a Tiera
// instance may hold millions of keys, so per-object counters are off the
// table. This module keeps heat in O(fixed) memory with two classic sketches:
//
//  * A sharded count-min sketch per tier: `depth` rows of `width` counters,
//    replicated across `shards` independent tables. A writer picks its shard
//    by thread id (not by key), so a single scorching key spreads its
//    increments over `shards` cache lines instead of serializing on one.
//    Estimates sum the per-shard minima; each shard obeys the classic
//    count-min bound (est >= true count added to that shard,
//    est <= true + eps*N_shard with eps = e/width), and the bounds add up,
//    so the combined estimate never undercounts and overcounts by at most
//    eps * total records.
//
//  * A space-saving-style top-K heavy-hitter table per tier. Cold keys pay
//    one relaxed atomic load (the admission threshold) and bail; keys that
//    beat the current minimum take a shared lock to refresh their entry, and
//    only genuine admissions/evictions take the exclusive lock. Eviction
//    re-queries the sketch for every member so a stale stored estimate never
//    protects a key that has gone cold.
//
// Decay: heat is a *rate*, so counts halve every `half_life` of modelled
// time (driven from the ControlLayer timer tick, like SLO evaluation). A
// key accessed at a steady r ops/s oscillates between half_life*r (just
// after a halving) and 2*half_life*r (just before, summing the geometric
// tail), so snapshots report rate = estimate / (2 * half_life) — the
// steady-state upper bound, exact immediately before a halving epoch.
// Halving is a plain load/store per counter; increments racing the halver
// may be lost, which is acceptable sampling noise for statistics (same
// stance as LatencyHistogram and the SLO slice rings).
//
// Published series (all labelled {tier=...}): tiera_heat_records_total,
// tiera_heat_evictions_total, tiera_heat_tracked_keys,
// tiera_heat_top_rate_per_s, plus instance-wide
// tiera_heat_decay_epochs_total and tiera_heat_memory_bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace tiera {

// Sharded count-min sketch over 64-bit key hashes. All methods are safe to
// call concurrently; halve() is lossy under concurrent add() (see file
// comment).
class CountMinSketch {
 public:
  // Rows beyond this stop helping (error falls as e^-depth); clamp so the
  // estimate path can use a fixed-size index buffer.
  static constexpr int kMaxDepth = 8;

  // width is rounded up to a power of two (index = hash & (width-1));
  // depth is clamped to [1, kMaxDepth].
  CountMinSketch(int shards, int depth, std::size_t width);

  // Adds n to the calling thread's shard and returns the post-add combined
  // estimate for the key. The calling shard's minimum is taken from the
  // values just written, so the add itself costs no extra counter loads.
  std::uint64_t add(std::uint64_t key_hash, std::uint32_t n = 1);
  // Sum over shards of (min over rows). Never less than the true count
  // added since the last halving cascade settled. Shards no thread has ever
  // written are skipped — their minimum is zero by construction.
  std::uint64_t estimate(std::uint64_t key_hash) const;

  // Halves every counter in place (one decay epoch).
  void halve();

  // Distribution of per-column estimates: bucket[i] counts columns whose
  // min-over-rows summed estimate lies in [2^i, 2^(i+1)). A cheap stand-in
  // for "how many keys are this hot" — each occupied column is at least one
  // key (colliding keys merge upward, so the histogram skews hot, matching
  // the sketch's overestimate direction).
  static constexpr int kHistogramBuckets = 16;
  std::vector<std::uint64_t> histogram() const;

  std::size_t memory_bytes() const {
    return counters_.size() * sizeof(counters_[0]);
  }
  int shards() const { return shards_; }
  int depth() const { return depth_; }
  std::size_t width() const { return width_; }

 private:
  // Flat [shard][row][column] layout; one allocation, fixed for life.
  std::size_t slot(int shard, int row, std::size_t col) const {
    return (static_cast<std::size_t>(shard) * depth_ + row) * width_ + col;
  }
  std::size_t col_of(std::uint64_t key_hash, int row) const;
  int shard_for_thread() const;

  const int shards_;
  const int depth_;
  const std::size_t width_;  // power of two
  std::vector<std::atomic<std::uint32_t>> counters_;
  // Set once by the first add() landing in a shard; estimate() skips shards
  // that are still untouched (their min-over-rows is zero). With fewer
  // writer threads than shards this cuts the estimate to the shards that
  // actually hold counts.
  std::vector<std::atomic<std::uint8_t>> shard_used_;
};

// One reported heavy hitter.
struct HeatEntry {
  std::string key;
  std::uint64_t estimate = 0;  // decayed access count (sketch estimate)
  double rate_per_s = 0;       // estimate / (2 * half_life), modelled time
};

// Space-saving-style top-K table backed by a CountMinSketch. Membership and
// eviction decisions use live sketch estimates; the table only remembers
// *which* keys are candidates (plus a cached estimate for the admission
// threshold).
class HeatTopK {
 public:
  HeatTopK(std::size_t capacity, const CountMinSketch* sketch);

  // Offers a key with its fresh post-add sketch estimate.
  void offer(std::string_view key, std::uint64_t key_hash,
             std::uint64_t estimate);
  // Halves cached estimates and the admission threshold (called under the
  // same decay epoch that halved the sketch).
  void on_decay();

  // Members with re-queried sketch estimates, hottest first.
  std::vector<HeatEntry> snapshot(std::size_t top_n) const;

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Member {
    std::string key;
    std::atomic<std::uint64_t> cached_estimate{0};
  };

  const std::size_t capacity_;
  const CountMinSketch* sketch_;
  // Cold-key early-out: once the table is full, offers at or below this
  // threshold return without touching the lock.
  std::atomic<std::uint64_t> threshold_{0};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> evictions_{0};
  // Eviction re-query scans cost O(capacity * sketch reads); in a workload
  // of near-ties every offer lands one count above the (instantly stale)
  // threshold and would scan. Budget: at most one scan per capacity_ offers.
  // A denied offer raises the threshold to its own estimate and bails, so
  // the following ties never leave the lock-free path; the next scan resets
  // the threshold to the true member minimum, bounding how long a denied
  // riser waits to capacity_ offers.
  std::atomic<std::uint64_t> offer_seq_{0};
  std::atomic<std::uint64_t> last_scan_seq_{0};
  mutable std::shared_mutex mu_;
  // Keyed by the 64-bit key hash (a cross-key collision at 64 bits is
  // negligible next to the sketch's own error).
  std::unordered_map<std::uint64_t, std::unique_ptr<Member>> members_;
};

struct HeatOptions {
  // Default geometry: depth 2 keeps the record path at two counter RMWs
  // per shard (the add cost scales with rows, not width), and width 4096
  // buys back the collision rate two rows would otherwise lose — the
  // acceptance bar (>= 90% top-20 recall over 100k zipfian keys, asserted
  // in tests and CI) holds with margin at 2 x 4096 but not at 2 x 2048.
  int sketch_shards = 4;
  int sketch_depth = 2;
  std::size_t sketch_width = 4096;  // per row, per shard
  std::size_t top_k = 64;
  // Halving period in modelled time (scaled like timer periods and SLO
  // windows).
  Duration half_life = std::chrono::seconds(60);
};

// Point-in-time heat view of one tier, for `tiera_cli heat` and the kHeat
// RPC.
struct TierHeatSnapshot {
  std::string tier;
  std::vector<HeatEntry> top;  // hottest first
  // CountMinSketch::histogram() buckets: [2^i, 2^(i+1)) estimate counts.
  std::vector<std::uint64_t> histogram;
  std::uint64_t tracked_keys = 0;  // current top-K table occupancy
  std::uint64_t records = 0;       // accesses recorded against this tier
  std::uint64_t bytes = 0;         // payload bytes of those accesses
  std::uint64_t evictions = 0;
};

struct HeatSnapshot {
  std::vector<TierHeatSnapshot> tiers;
  double half_life_s = 0;  // modelled seconds
  std::uint64_t decay_epochs = 0;
  std::uint64_t memory_bytes = 0;  // all sketches + top-K capacity bounds
};

// All heat state of one instance. record() is the hot path: one acquire
// load of the copy-on-write tier list, a sketch add, and a (usually
// lock-free) top-K offer. Decay and metric publication run off the control
// layer's timer tick and the registry's collector pass.
class HeatTracker {
 public:
  HeatTracker(std::string instance_name, HeatOptions options);
  ~HeatTracker();

  HeatTracker(const HeatTracker&) = delete;
  HeatTracker& operator=(const HeatTracker&) = delete;

  // --- Hot path ------------------------------------------------------------
  // Records one access to `key` observed at `tier`. GETs record the serving
  // tier; PUTs record every tier the payload was stored to.
  void record(std::string_view tier, std::string_view key,
              std::uint64_t bytes);

  // --- Control tick --------------------------------------------------------
  // Advances decay time by `modelled_elapsed`; runs one halving epoch per
  // elapsed half-life.
  void on_tick(Duration modelled_elapsed);

  HeatSnapshot snapshot(std::size_t top_n) const;

  const HeatOptions& options() const { return options_; }
  std::uint64_t decay_epochs() const {
    return decay_epochs_.load(std::memory_order_relaxed);
  }
  // Fixed upper bound on sketch + top-K memory, independent of key count.
  std::uint64_t memory_bytes() const;

 private:
  struct TierHeat {
    std::string label;
    CountMinSketch sketch;
    HeatTopK topk;
    std::atomic<std::uint64_t> records{0};
    std::atomic<std::uint64_t> bytes{0};
    Counter* records_counter = nullptr;    // tiera_heat_records_total{tier}
    Counter* evictions_counter = nullptr;  // tiera_heat_evictions_total{tier}
    Gauge* tracked_gauge = nullptr;        // tiera_heat_tracked_keys{tier}
    Gauge* top_rate_gauge = nullptr;       // tiera_heat_top_rate_per_s{tier}
    // Collector delta-sync cursors (collectors are serialized by the
    // registry, so plain fields suffice).
    std::uint64_t synced_records = 0;
    std::uint64_t synced_evictions = 0;

    TierHeat(std::string tier_label, const HeatOptions& options);
  };
  using TierList = std::vector<std::shared_ptr<TierHeat>>;

  TierHeat& tier_heat(std::string_view tier);
  void collect_metrics();
  double rate_of(std::uint64_t estimate) const;

  const std::string instance_name_;
  const HeatOptions options_;
  const double half_life_s_;  // modelled seconds, > 0

  // Copy-on-write tier list (same idiom as the instance's per-tier hit
  // counters): readers load once; writers swap under mu_; retired lists are
  // kept until the tracker dies so a racing reader never chases freed
  // memory.
  std::atomic<const TierList*> tiers_{nullptr};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<const TierList>> retired_;

  // Modelled time accumulated toward the next halving epoch.
  Duration since_decay_{0};
  std::atomic<std::uint64_t> decay_epochs_{0};

  Counter* decay_counter_ = nullptr;  // tiera_heat_decay_epochs_total
  Gauge* memory_gauge_ = nullptr;     // tiera_heat_memory_bytes
  std::uint64_t synced_epochs_ = 0;
  MetricsRegistry::CollectorId collector_id_ = 0;
};

}  // namespace tiera
