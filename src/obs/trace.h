// RequestTracer: a lock-cheap ring buffer of causally-linked spans.
//
// Every application-interface operation (PUT/GET/DELETE) records one span;
// every policy-rule firing records an event span, and every response the
// rule executes (move, copy, delete, grow, ...) records a child span. Spans
// carry the TraceContext ids (trace id, span id, parent span id) minted at
// the application-interface boundary and propagated through the control
// layer's thread pool, so a background `move` triggered by a PUT is linked —
// same trace id, parent = the PUT's span — to the request that caused it.
// That is the "why did data move between tiers" record the paper's policy
// debugging needs.
//
// Renderings:
//   * dump()         — one line per span, newest last (tiera_cli trace);
//   * dump_chrome()  — Chrome trace-event JSON (chrome://tracing, Perfetto);
//   * slow-op log    — completed span trees whose root exceeds
//                      TIERA_SLOW_OP_MS are logged as indented trees.
//
// Design: a fixed array of slots; writers claim a slot with one relaxed
// fetch_add and then fill it under that slot's own mutex, so concurrent
// recorders only contend when the ring wraps onto the same slot. Spans are
// fixed-size (ids truncated) so recording never allocates. Overwriting a
// still-valid slot counts into `tiera_trace_dropped_total`; size the ring
// with TIERA_TRACE_CAPACITY when the default loses spans.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/trace_context.h"

namespace tiera {

class Counter;

enum class TraceOp : std::uint8_t {
  kPut,
  kGet,
  kDelete,
  kEvent,     // a policy rule firing (action/timer/threshold)
  kResponse,  // one response executed by a firing rule
  kRetry,     // a tier op that needed the resilience layer (retries/breaker)
  kHedge,     // a hedged read raced against a slow primary tier
};

std::string_view to_string(TraceOp op);

class RequestTracer {
 public:
  struct Span {
    std::uint64_t seq = 0;       // global order of recording
    std::uint64_t trace_id = 0;  // groups causally-linked spans
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;  // 0 = root span
    std::uint64_t rule_id = 0;         // policy rule involved (0 = none)
    TraceOp op = TraceOp::kPut;
    char name[40] = {};       // op verb / rule label / response, truncated
    char object_id[48] = {};  // truncated, NUL-terminated
    char tier[24] = {};       // tier served/stored ("" when none)
    std::int64_t start_us = 0;  // steady-clock microseconds at span start
    double duration_ms = 0;
    bool ok = false;
  };

  explicit RequestTracer(std::size_t capacity = 512);

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  // `fallback` unless TIERA_TRACE_CAPACITY names a positive integer.
  static std::size_t capacity_from_env(std::size_t fallback);

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Spans slower than this (and eligible: root or rule-event) are logged
  // with their whole trace tree. 0 disables; TIERA_SLOW_OP_MS presets it.
  void set_slow_op_threshold_ms(double ms) {
    slow_op_ms_.store(ms, std::memory_order_relaxed);
  }
  double slow_op_threshold_ms() const {
    return slow_op_ms_.load(std::memory_order_relaxed);
  }

  // Legacy leaf-span record: allocates a fresh span under the thread's
  // ambient TraceContext; the span started `latency` ago.
  void record(TraceOp op, std::string_view object_id, std::string_view tier,
              Duration latency, bool ok);

  // Records the span a live TraceScope represents (ids + start time come
  // from the scope). `name` defaults to the op verb when empty.
  void record(const TraceScope& scope, TraceOp op, std::string_view name,
              std::string_view object_id, std::string_view tier, bool ok,
              std::uint64_t rule_id = 0);

  // The newest `last_n` spans, oldest first.
  std::vector<Span> snapshot(std::size_t last_n) const;
  // Text rendering of snapshot(last_n), one line per span.
  std::string dump(std::size_t last_n = 32) const;
  // Chrome trace-event JSON of snapshot(last_n).
  std::string dump_chrome(std::size_t last_n = 512) const;
  // Indented parent/child tree of the spans recorded for one trace.
  std::string dump_tree(std::uint64_t trace_id) const;

  std::uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  // Spans overwritten before any snapshot could keep them (ring full).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    mutable std::mutex mu;
    Span span;
    bool valid = false;
  };

  void fill_slot(Span span);
  void maybe_log_slow(const Span& span);

  std::atomic<bool> enabled_{true};
  std::atomic<double> slow_op_ms_{0};
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::vector<Slot> slots_;
  Counter* dropped_counter_;  // tiera_trace_dropped_total
};

// Chrome trace-event JSON ("traceEvents" array of complete events, one per
// span, ts/dur in microseconds, tid = trace id) — loadable in
// chrome://tracing and Perfetto. Deterministic: spans sort by start time.
std::string render_chrome_trace(const std::vector<RequestTracer::Span>& spans);

}  // namespace tiera
