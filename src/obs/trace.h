// RequestTracer: a lock-cheap ring buffer of recent request spans.
//
// Every application-interface operation (PUT/GET/DELETE) records one span:
// the op, the object id, the tier that served or absorbed it, the wall
// duration, and the outcome. `dump()` renders the newest spans as a text
// trace — the "what did the last N requests actually do" view the paper's
// debugging sessions rely on (which tier served a read decides whether a
// policy is working).
//
// Design: a fixed array of slots; writers claim a slot with one relaxed
// fetch_add and then fill it under that slot's own mutex, so concurrent
// recorders only contend when the ring wraps onto the same slot. Spans are
// fixed-size (ids truncated) so recording never allocates.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace tiera {

enum class TraceOp : std::uint8_t { kPut, kGet, kDelete };

std::string_view to_string(TraceOp op);

class RequestTracer {
 public:
  struct Span {
    std::uint64_t seq = 0;  // global order of the request
    TraceOp op = TraceOp::kPut;
    char object_id[48] = {};  // truncated, NUL-terminated
    char tier[24] = {};       // tier served/stored ("" when none)
    double duration_ms = 0;
    bool ok = false;
  };

  explicit RequestTracer(std::size_t capacity = 512);

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(TraceOp op, std::string_view object_id, std::string_view tier,
              Duration latency, bool ok);

  // The newest `last_n` spans, oldest first.
  std::vector<Span> snapshot(std::size_t last_n) const;
  // Text rendering of snapshot(last_n), one line per span.
  std::string dump(std::size_t last_n = 32) const;

  std::uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    mutable std::mutex mu;
    Span span;
    bool valid = false;
  };

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_{0};
  std::vector<Slot> slots_;
};

}  // namespace tiera
