// FileAdapter: POSIX-style files on top of the Tiera PUT/GET object API.
//
// The paper runs unmodified MySQL on Tiera through a FUSE filesystem that
// "splits the database files into 4 KB objects (OS page size) and stores
// them in Tiera" (§4.1.1). This adapter is that layer, minus the kernel:
// byte-addressable read/write/truncate over files whose contents live as
// fixed-size chunk objects (`<path>#<chunk>`); per-file length metadata is
// kept in a small header object (`<path>#meta`).
//
// Aligned whole-chunk writes (the common case for a paged database engine)
// map to exactly one PUT; unaligned writes read-modify-write the chunks
// they straddle.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/instance.h"

namespace tiera {

class FileAdapter {
 public:
  explicit FileAdapter(TieraInstance& instance,
                       std::size_t chunk_size = 4096);

  std::size_t chunk_size() const { return chunk_size_; }

  // Create an empty file (error if it exists). Tags apply to every chunk
  // object, so tier policies can address whole files as object classes.
  Status create(const std::string& path,
                const std::vector<std::string>& tags = {});
  bool exists(const std::string& path) const;
  Result<std::uint64_t> size(const std::string& path) const;

  // Byte-addressable write; extends the file when writing past the end.
  Status write(const std::string& path, std::uint64_t offset, ByteView data);
  // Appends at the current end of file; returns the offset written.
  Result<std::uint64_t> append(const std::string& path, ByteView data);

  // Reads up to `length` bytes (short read at end of file).
  Result<Bytes> read(const std::string& path, std::uint64_t offset,
                     std::size_t length) const;
  Result<Bytes> read_all(const std::string& path) const;

  Status truncate(const std::string& path, std::uint64_t new_size);
  Status remove(const std::string& path);

  std::vector<std::string> list(const std::string& prefix = "") const;

 private:
  struct FileState {
    std::uint64_t size = 0;
    std::vector<std::string> tags;
    std::mutex mu;  // serialises size updates and RMW chunk writes
  };

  std::string meta_key(const std::string& path) const {
    return path + "#meta";
  }
  std::string chunk_key(const std::string& path, std::uint64_t index) const {
    return path + "#" + std::to_string(index);
  }

  // Loads (or creates) the in-memory state for a file; null if absent and
  // `create_if_missing` is false.
  std::shared_ptr<FileState> state_for(const std::string& path,
                                       bool create_if_missing) const;
  Status persist_meta(const std::string& path, FileState& state);

  TieraInstance& instance_;
  const std::size_t chunk_size_;

  mutable std::mutex files_mu_;
  mutable std::map<std::string, std::shared_ptr<FileState>> files_;
};

}  // namespace tiera
