#include "posix/file_adapter.h"

#include <algorithm>
#include <cstring>

namespace tiera {

namespace {
constexpr std::string_view kMetaPrefixGuard = "#meta";

std::uint64_t decode_size(ByteView data) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && i < data.size(); ++i) {
    v |= std::uint64_t(data[i]) << (8 * i);
  }
  return v;
}

Bytes encode_size(std::uint64_t v) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) out[i] = std::uint8_t(v >> (8 * i));
  return out;
}
}  // namespace

FileAdapter::FileAdapter(TieraInstance& instance, std::size_t chunk_size)
    : instance_(instance), chunk_size_(chunk_size ? chunk_size : 4096) {}

std::shared_ptr<FileAdapter::FileState> FileAdapter::state_for(
    const std::string& path, bool create_if_missing) const {
  {
    std::lock_guard lock(files_mu_);
    auto it = files_.find(path);
    if (it != files_.end()) return it->second;
  }
  // Not cached: consult the instance (another process or a restart may have
  // created the file).
  const auto meta = instance_.metadata().get(meta_key(path));
  if (!meta && !create_if_missing) return nullptr;
  auto state = std::make_shared<FileState>();
  if (meta) {
    // Size lives in the header object's bytes.
    auto bytes = instance_.get(meta_key(path));
    if (bytes.ok()) state->size = decode_size(as_view(*bytes));
  }
  std::lock_guard lock(files_mu_);
  auto [it, inserted] = files_.emplace(path, state);
  return it->second;
}

Status FileAdapter::persist_meta(const std::string& path, FileState& state) {
  return instance_.put(meta_key(path), as_view(encode_size(state.size)),
                       state.tags);
}

Status FileAdapter::create(const std::string& path,
                           const std::vector<std::string>& tags) {
  if (path.empty() || path.find('#') != std::string::npos) {
    return Status::InvalidArgument("bad file path: " + path);
  }
  if (exists(path)) return Status::AlreadyExists("file " + path);
  auto state = state_for(path, /*create_if_missing=*/true);
  std::lock_guard lock(state->mu);
  state->tags = tags;
  state->size = 0;
  return persist_meta(path, *state);
}

bool FileAdapter::exists(const std::string& path) const {
  if (files_mu_.try_lock()) {
    const bool cached = files_.count(path) > 0;
    files_mu_.unlock();
    if (cached) return true;
  }
  return instance_.metadata().contains(meta_key(path));
}

Result<std::uint64_t> FileAdapter::size(const std::string& path) const {
  auto state = state_for(path, false);
  if (!state) return Status::NotFound("file " + path);
  std::lock_guard lock(state->mu);
  return state->size;
}

Status FileAdapter::write(const std::string& path, std::uint64_t offset,
                          ByteView data) {
  auto state = state_for(path, false);
  if (!state) return Status::NotFound("file " + path);
  std::lock_guard lock(state->mu);

  std::size_t written = 0;
  while (written < data.size()) {
    const std::uint64_t pos = offset + written;
    const std::uint64_t chunk_index = pos / chunk_size_;
    const std::size_t chunk_offset = pos % chunk_size_;
    const std::size_t take =
        std::min(data.size() - written, chunk_size_ - chunk_offset);
    const std::string key = chunk_key(path, chunk_index);

    if (chunk_offset == 0 && take == chunk_size_) {
      // Aligned full-chunk write: single PUT.
      TIERA_RETURN_IF_ERROR(instance_.put(
          key, ByteView(data.data() + written, take), state->tags));
    } else {
      // Read-modify-write the chunk (missing chunk reads as zeros).
      Bytes chunk;
      auto existing = instance_.get(key);
      if (existing.ok()) {
        chunk = std::move(existing).value();
      } else if (!existing.status().is_not_found()) {
        return existing.status();
      }
      if (chunk.size() < chunk_offset + take) {
        chunk.resize(chunk_offset + take, 0);
      }
      std::memcpy(chunk.data() + chunk_offset, data.data() + written, take);
      TIERA_RETURN_IF_ERROR(instance_.put(key, as_view(chunk), state->tags));
    }
    written += take;
  }

  const std::uint64_t end = offset + data.size();
  if (end > state->size) {
    // Persist the length header only when the chunk count changes. Within
    // the last chunk the persisted size may lag; after a crash that tail
    // reads as torn — the same contract a real filesystem gives a WAL.
    const bool chunk_boundary_crossed =
        (end + chunk_size_ - 1) / chunk_size_ !=
        (state->size + chunk_size_ - 1) / chunk_size_;
    state->size = end;
    if (chunk_boundary_crossed) {
      TIERA_RETURN_IF_ERROR(persist_meta(path, *state));
    }
  }
  return Status::Ok();
}

Result<std::uint64_t> FileAdapter::append(const std::string& path,
                                          ByteView data) {
  auto state = state_for(path, false);
  if (!state) return Status::NotFound("file " + path);
  std::uint64_t offset;
  {
    std::lock_guard lock(state->mu);
    offset = state->size;
  }
  TIERA_RETURN_IF_ERROR(write(path, offset, data));
  return offset;
}

Result<Bytes> FileAdapter::read(const std::string& path, std::uint64_t offset,
                                std::size_t length) const {
  auto state = state_for(path, false);
  if (!state) return Status::NotFound("file " + path);
  std::uint64_t file_size;
  {
    std::lock_guard lock(state->mu);
    file_size = state->size;
  }
  if (offset >= file_size) return Bytes{};
  length = static_cast<std::size_t>(
      std::min<std::uint64_t>(length, file_size - offset));

  Bytes out;
  out.reserve(length);
  std::size_t read_bytes = 0;
  auto& instance = instance_;
  while (read_bytes < length) {
    const std::uint64_t pos = offset + read_bytes;
    const std::uint64_t chunk_index = pos / chunk_size_;
    const std::size_t chunk_offset = pos % chunk_size_;
    const std::size_t take =
        std::min(length - read_bytes, chunk_size_ - chunk_offset);
    auto chunk = instance.get(chunk_key(path, chunk_index));
    if (chunk.ok()) {
      Bytes& bytes = *chunk;
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t at = chunk_offset + i;
        out.push_back(at < bytes.size() ? bytes[at] : 0);
      }
    } else if (chunk.status().is_not_found()) {
      out.insert(out.end(), take, 0);  // sparse hole
    } else {
      return chunk.status();
    }
    read_bytes += take;
  }
  return out;
}

Result<Bytes> FileAdapter::read_all(const std::string& path) const {
  auto total = size(path);
  if (!total.ok()) return total.status();
  return read(path, 0, static_cast<std::size_t>(*total));
}

Status FileAdapter::truncate(const std::string& path,
                             std::uint64_t new_size) {
  auto state = state_for(path, false);
  if (!state) return Status::NotFound("file " + path);
  std::lock_guard lock(state->mu);
  if (new_size < state->size) {
    const std::uint64_t first_dead = (new_size + chunk_size_ - 1) / chunk_size_;
    const std::uint64_t last = state->size / chunk_size_;
    for (std::uint64_t index = first_dead; index <= last; ++index) {
      (void)instance_.remove(chunk_key(path, index));
    }
    // Trim the now-partial final chunk.
    if (new_size % chunk_size_ != 0) {
      const std::uint64_t final_index = new_size / chunk_size_;
      auto chunk = instance_.get(chunk_key(path, final_index));
      if (chunk.ok()) {
        chunk->resize(new_size % chunk_size_);
        TIERA_RETURN_IF_ERROR(instance_.put(chunk_key(path, final_index),
                                            as_view(*chunk), state->tags));
      }
    }
  }
  state->size = new_size;
  return persist_meta(path, *state);
}

Status FileAdapter::remove(const std::string& path) {
  auto state = state_for(path, false);
  if (!state) return Status::NotFound("file " + path);
  std::lock_guard lock(state->mu);
  const std::uint64_t chunks =
      (state->size + chunk_size_ - 1) / chunk_size_;
  for (std::uint64_t index = 0; index < chunks; ++index) {
    (void)instance_.remove(chunk_key(path, index));
  }
  (void)instance_.remove(meta_key(path));
  {
    std::lock_guard files_lock(files_mu_);
    files_.erase(path);
  }
  return Status::Ok();
}

std::vector<std::string> FileAdapter::list(const std::string& prefix) const {
  std::vector<std::string> out;
  instance_.metadata().for_each([&](const ObjectMeta& meta) {
    const std::string& id = meta.id;
    const auto suffix_at = id.rfind(kMetaPrefixGuard);
    if (suffix_at == std::string::npos ||
        suffix_at + kMetaPrefixGuard.size() != id.size()) {
      return;
    }
    const std::string path = id.substr(0, suffix_at);
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tiera
