#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tiera {

namespace {

Status errno_status(const char* op) {
  return Status::Internal(std::string("tcp ") + op + ": " +
                          std::strerror(errno));
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Returns 1 on success, 0 on clean close, -1 on error.
int recv_all(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return 0;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

TcpConnection::~TcpConnection() { close(); }

void TcpConnection::shutdown() {
  shut_down_.store(true, std::memory_order_release);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void TcpConnection::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Result<std::unique_ptr<TcpConnection>> TcpConnection::connect(
    const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + " failed: " +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConnection>(fd);
}

Status TcpConnection::send_frame(ByteView payload) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || closed()) return Status::Unavailable("connection closed");
  if (payload.size() > kMaxFrame) {
    return Status::InvalidArgument("frame too large");
  }
  std::uint8_t header[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::memcpy(header, &n, 4);
  if (!send_all(fd, header, 4) ||
      !send_all(fd, payload.data(), payload.size())) {
    // Error paths only half-close: another thread may still be blocked in
    // recv_frame() on this fd, and releasing the number under it would let
    // the kernel recycle it. The destructor (or the owner) closes for real.
    shutdown();
    return Status::Unavailable("peer went away during send");
  }
  return Status::Ok();
}

Result<Bytes> TcpConnection::recv_frame() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || closed()) return Status::Unavailable("connection closed");
  std::uint8_t header[4];
  const int rc = recv_all(fd, header, 4);
  if (rc <= 0) {
    shutdown();
    return Status::Unavailable(rc == 0 ? "peer closed connection"
                                       : "recv failed");
  }
  std::uint32_t n;
  std::memcpy(&n, header, 4);
  if (n > kMaxFrame) {
    shutdown();
    return Status::Corruption("oversized frame");
  }
  Bytes payload(n);
  if (n > 0 && recv_all(fd, payload.data(), n) <= 0) {
    shutdown();
    return Status::Unavailable("peer closed mid-frame");
  }
  return payload;
}

TcpListener::~TcpListener() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Result<std::unique_ptr<TcpListener>> TcpListener::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return errno_status("bind");
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return errno_status("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return errno_status("getsockname");
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

Result<std::unique_ptr<TcpConnection>> TcpListener::accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::Unavailable("listener shut down");
  for (;;) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("listener shut down");
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::make_unique<TcpConnection>(client);
  }
}

void TcpListener::shutdown() {
  // Half-close only: wakes a blocked accept() without releasing the fd
  // number, so the accept loop can never race a close/reuse. The destructor
  // releases the fd once the loop has been joined.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace tiera
