// Minimal blocking TCP transport with length-framed messages.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace tiera {

// A connected socket carrying [u32 length][payload] frames.
//
// Shutdown discipline (this is what keeps the type race-free under TSan):
// any thread may call shutdown() to disable I/O — a peer blocked in
// recv_frame()/send_frame() returns with kUnavailable, but the fd number
// stays reserved so no concurrent reader can race a close/reuse. close()
// actually releases the fd and must only run when no other thread is inside
// an I/O call (the destructor, or the single owning thread).
class TcpConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  static Result<std::unique_ptr<TcpConnection>> connect(
      const std::string& host, std::uint16_t port);

  Status send_frame(ByteView payload);
  // Blocks until a full frame arrives. kUnavailable on clean peer close.
  Result<Bytes> recv_frame();

  // Cross-thread-safe: unblocks in-flight I/O without releasing the fd.
  void shutdown();
  void close();
  bool closed() const {
    return fd_.load(std::memory_order_acquire) < 0 ||
           shut_down_.load(std::memory_order_acquire);
  }

  // Frames larger than this are rejected (corrupt length guard).
  static constexpr std::uint32_t kMaxFrame = 64u << 20;

 private:
  std::atomic<int> fd_;
  std::atomic<bool> shut_down_{false};
};

class TcpListener {
 public:
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds 127.0.0.1:port (port 0 = ephemeral).
  static Result<std::unique_ptr<TcpListener>> listen(std::uint16_t port);

  std::uint16_t port() const { return port_; }

  // Blocks for the next connection; kUnavailable after shutdown().
  Result<std::unique_ptr<TcpConnection>> accept();

  // Unblocks accept() (Linux: shutdown() on a listening socket makes a
  // blocked accept return). The fd itself is released by the destructor,
  // after the accept loop has been joined, so accept() never races a
  // close/reuse of the fd number.
  void shutdown();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  std::atomic<int> fd_;
  std::uint16_t port_;
};

}  // namespace tiera
