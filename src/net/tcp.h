// Minimal blocking TCP transport with length-framed messages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace tiera {

// A connected socket carrying [u32 length][payload] frames.
class TcpConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  static Result<std::unique_ptr<TcpConnection>> connect(
      const std::string& host, std::uint16_t port);

  Status send_frame(ByteView payload);
  // Blocks until a full frame arrives. kUnavailable on clean peer close.
  Result<Bytes> recv_frame();

  void close();
  bool closed() const { return fd_ < 0; }

  // Frames larger than this are rejected (corrupt length guard).
  static constexpr std::uint32_t kMaxFrame = 64u << 20;

 private:
  int fd_;
};

class TcpListener {
 public:
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds 127.0.0.1:port (port 0 = ephemeral).
  static Result<std::unique_ptr<TcpListener>> listen(std::uint16_t port);

  std::uint16_t port() const { return port_; }

  // Blocks for the next connection; kUnavailable after shutdown().
  Result<std::unique_ptr<TcpConnection>> accept();

  // Unblocks accept() and closes the socket.
  void shutdown();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  std::uint16_t port_;
};

}  // namespace tiera
