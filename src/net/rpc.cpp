#include "net/rpc.h"

namespace tiera {

namespace {

ReactorOptions shards_only(std::size_t request_threads) {
  ReactorOptions options;
  options.shards = request_threads;
  return options;
}

}  // namespace

RpcServer::RpcServer(std::uint16_t port, std::size_t request_threads)
    : ReactorServer(port, shards_only(request_threads)) {}

RpcServer::RpcServer(std::uint16_t port, ReactorOptions options)
    : ReactorServer(port, options) {}

Result<std::unique_ptr<RpcClient>> RpcClient::connect(const std::string& host,
                                                      std::uint16_t port) {
  auto conn = TcpConnection::connect(host, port);
  if (!conn.ok()) return conn.status();
  return std::unique_ptr<RpcClient>(new RpcClient(std::move(conn).value()));
}

void RpcClient::set_tenant(std::string tenant) {
  std::lock_guard lock(mu_);
  tenant_ = std::move(tenant);
}

void RpcClient::set_background(bool background) {
  std::lock_guard lock(mu_);
  background_ = background;
}

Result<Bytes> RpcClient::call(std::uint8_t method, ByteView body) {
  std::lock_guard lock(mu_);
  WireWriter request;
  const std::uint64_t id = next_id_++;
  request.u64(id);
  std::uint8_t wire_method = method & kRpcMethodMask;
  if (!tenant_.empty()) wire_method |= kRpcTenantFlag;
  if (background_) wire_method |= kRpcBackgroundFlag;
  request.u8(wire_method);
  if (!tenant_.empty()) request.str(tenant_);
  Bytes frame = request.take();
  append(frame, body);
  TIERA_RETURN_IF_ERROR(conn_->send_frame(as_view(frame)));
  Result<Bytes> reply = conn_->recv_frame();
  if (!reply.ok()) return reply.status();
  WireReader reader(as_view(*reply));
  std::uint64_t reply_id = 0;
  std::uint8_t code = 0;
  std::string message;
  Bytes payload;
  TIERA_RETURN_IF_ERROR(reader.u64(reply_id));
  TIERA_RETURN_IF_ERROR(reader.u8(code));
  TIERA_RETURN_IF_ERROR(reader.str(message));
  TIERA_RETURN_IF_ERROR(reader.bytes(payload));
  if (reply_id != id) return Status::Internal("rpc response id mismatch");
  if (code != static_cast<std::uint8_t>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  return payload;
}

}  // namespace tiera
