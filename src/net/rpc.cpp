#include "net/rpc.h"

#include "common/logging.h"
#include "common/profile_stack.h"

namespace tiera {

RpcServer::RpcServer(std::uint16_t port, std::size_t request_threads)
    : requested_port_(port), pool_(request_threads, "rpc-requests") {
  MetricsRegistry& reg = MetricsRegistry::global();
  metrics_.requests = &reg.counter("tiera_rpc_requests_total");
  metrics_.errors = &reg.counter("tiera_rpc_errors_total");
  metrics_.queue_depth = &reg.gauge("tiera_rpc_queue_depth");
  metrics_.readers = &reg.gauge("tiera_rpc_reader_threads");
  metrics_.request_latency = &reg.histogram("tiera_rpc_request_latency_ms");
  Gauge* queue_depth = metrics_.queue_depth;
  pool_.set_observer([queue_depth](std::size_t depth, std::size_t) {
    queue_depth->set(static_cast<double>(depth));
  });
}

RpcServer::~RpcServer() { stop(); }

void RpcServer::register_handler(std::uint8_t method, RpcHandler handler) {
  handlers_[method] = std::move(handler);
}

Status RpcServer::start() {
  auto listener = TcpListener::listen(requested_port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  TIERA_LOG(kInfo, "net") << "rpc server listening on port "
                          << listener_->port();
  return Status::Ok();
}

void RpcServer::stop() {
  if (!running_.exchange(false)) return;
  if (listener_) listener_->shutdown();
  {
    // Half-close live connections so per-connection recv loops unblock.
    // shutdown() (not close()) keeps the fd reserved while reader threads
    // and in-flight pool tasks may still touch it.
    std::lock_guard lock(conns_mu_);
    for (auto& reader : readers_) {
      if (auto conn = reader.conn.lock()) conn->shutdown();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop is done, so readers_ gains no new entries. Sweep once
  // more for connections accepted during shutdown, then join every reader
  // before stopping the pool.
  std::vector<Reader> readers;
  {
    std::lock_guard lock(conns_mu_);
    for (auto& reader : readers_) {
      if (auto conn = reader.conn.lock()) conn->shutdown();
    }
    readers = std::move(readers_);
    readers_.clear();
  }
  for (auto& reader : readers) {
    if (reader.thread.joinable()) reader.thread.join();
  }
  pool_.shutdown();
}

std::uint16_t RpcServer::port() const {
  return listener_ ? listener_->port() : requested_port_;
}

std::size_t RpcServer::tracked_readers() {
  std::lock_guard lock(conns_mu_);
  return readers_.size();
}

void RpcServer::accept_loop() {
  profile_set_thread_name("rpc-accept");
  while (running_.load()) {
    auto conn = listener_->accept();
    if (!conn.ok()) return;  // shut down
    std::shared_ptr<TcpConnection> shared = std::move(conn).value();
    // One lightweight reader thread per connection; request bodies are
    // serviced on the shared pool so slow requests do not block the socket.
    // Readers are tracked (not detached) so stop() can join them after
    // half-closing the sockets; finished readers are reaped here so a
    // long-lived server with many short connections does not accumulate
    // unjoined threads.
    std::lock_guard lock(conns_mu_);
    reap_finished_readers_locked();
    Reader reader;
    reader.conn = shared;
    reader.done = std::make_shared<std::atomic<bool>>(false);
    reader.thread = std::thread([this, shared, done = reader.done] {
      serve_connection(shared);
      done->store(true, std::memory_order_release);
    });
    readers_.push_back(std::move(reader));
    metrics_.readers->set(static_cast<double>(readers_.size()));
  }
}

void RpcServer::reap_finished_readers_locked() {
  auto it = readers_.begin();
  while (it != readers_.end()) {
    if (it->done->load(std::memory_order_acquire)) {
      // The reader set `done` as its last action, so this join returns
      // almost immediately.
      if (it->thread.joinable()) it->thread.join();
      it = readers_.erase(it);
    } else {
      ++it;
    }
  }
  metrics_.readers->set(static_cast<double>(readers_.size()));
}

void RpcServer::serve_connection(std::shared_ptr<TcpConnection> conn) {
  profile_set_thread_name("rpc-reader");
  while (running_.load()) {
    Result<Bytes> frame = conn->recv_frame();
    if (!frame.ok()) return;
    auto request = std::make_shared<Bytes>(std::move(frame).value());
    const bool submitted = pool_.submit([this, conn, request] {
      Stopwatch watch;
      WireReader reader(as_view(*request));
      std::uint64_t request_id = 0;
      std::uint8_t method = 0;
      WireWriter response;
      if (!reader.u64(request_id).ok() || !reader.u8(method).ok()) {
        metrics_.errors->inc();
        return;  // malformed frame: drop
      }
      response.u64(request_id);
      auto it = handlers_.find(method);
      if (it == handlers_.end()) {
        response.u8(static_cast<std::uint8_t>(StatusCode::kInvalidArgument));
        response.str("unknown method");
        response.bytes({});
        metrics_.errors->inc();
      } else {
        const std::size_t header = 8 + 1;
        Result<Bytes> result = it->second(
            ByteView(request->data() + header, request->size() - header));
        if (result.ok()) {
          response.u8(static_cast<std::uint8_t>(StatusCode::kOk));
          response.str("");
          response.bytes(as_view(*result));
        } else {
          response.u8(static_cast<std::uint8_t>(result.status().code()));
          response.str(result.status().message());
          response.bytes({});
          metrics_.errors->inc();
        }
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      metrics_.requests->inc();
      metrics_.request_latency->record(watch.elapsed());
      (void)conn->send_frame(as_view(response.data()));
    });
    if (!submitted) return;
  }
}

Result<std::unique_ptr<RpcClient>> RpcClient::connect(const std::string& host,
                                                      std::uint16_t port) {
  auto conn = TcpConnection::connect(host, port);
  if (!conn.ok()) return conn.status();
  return std::unique_ptr<RpcClient>(new RpcClient(std::move(conn).value()));
}

Result<Bytes> RpcClient::call(std::uint8_t method, ByteView body) {
  std::lock_guard lock(mu_);
  WireWriter request;
  const std::uint64_t id = next_id_++;
  request.u64(id);
  request.u8(method);
  Bytes frame = request.take();
  append(frame, body);
  TIERA_RETURN_IF_ERROR(conn_->send_frame(as_view(frame)));
  Result<Bytes> reply = conn_->recv_frame();
  if (!reply.ok()) return reply.status();
  WireReader reader(as_view(*reply));
  std::uint64_t reply_id = 0;
  std::uint8_t code = 0;
  std::string message;
  Bytes payload;
  TIERA_RETURN_IF_ERROR(reader.u64(reply_id));
  TIERA_RETURN_IF_ERROR(reader.u8(code));
  TIERA_RETURN_IF_ERROR(reader.str(message));
  TIERA_RETURN_IF_ERROR(reader.bytes(payload));
  if (reply_id != id) return Status::Internal("rpc response id mismatch");
  if (code != static_cast<std::uint8_t>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  return payload;
}

}  // namespace tiera
