// Event-driven RPC core: N epoll loops own the sockets, per-object worker
// shards run the handlers.
//
// Wire format is unchanged from the blocking transport (net/tcp.h):
// [u32 length][u64 request_id | u8 method | body] in,
// [u32 length][u64 request_id | u8 status | string message | body] out.
//
// Threading model:
//   - loop threads ("rpc-loop-<i>"): epoll_wait, non-blocking reads, frame
//     decode, and response writes. Every accepted connection is handed to
//     one loop (round-robin) and stays pinned to it for life, so its decode
//     state machine — partial frames, write queue, in-flight count — is
//     touched by exactly one thread and needs no locks.
//   - shard threads ("rpc-shard-<i>"): handler execution. Requests hash by
//     a caller-provided shard key (the object id for Tiera's data verbs) to
//     a single-threaded worker, so one object's requests run FIFO on one
//     core and the instance's striped object locks stop bouncing between
//     cores. Handlers that block for a long time (profiler captures) can be
//     routed to a separate admin pool by returning kAdminKey.
//   - responses post back to the owning loop's mailbox (eventfd wakeup) and
//     are written on the loop thread, with EPOLLOUT-driven retry when the
//     client reads slowly.
//
// Backpressure: each loop caps decoded-but-unanswered requests
// (max_inflight_per_loop). At the cap it unsubscribes EPOLLIN on every
// connection it owns — the kernel socket buffers and TCP flow control push
// back on clients — and resubscribes once in-flight work drains below half
// the cap. tiera_rpc_backpressure_pauses_total counts the transitions.
//
// Connection teardown is immediate: EOF (or a socket error) reaps the
// connection on the loop thread as soon as its last response is flushed —
// nothing waits for a future accept() the way the old thread-per-connection
// server did.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/pool_metrics.h"

namespace tiera {

using RpcHandler = std::function<Result<Bytes>(ByteView body)>;

// Admission decision, run on the loop thread the moment a frame is decoded
// — before the request costs a shard dispatch or counts against the
// in-flight cap. `method` is the low 6 bits of the wire method byte;
// `tenant` comes from the optional tenant header (empty when absent);
// `background` is the client-declared background-priority bit. Returning a
// non-OK status fast-fails the request with that status (kOverloaded from
// the admission controller). Must be cheap and thread-safe: every loop
// thread calls it concurrently.
using AdmissionFn = std::function<Status(
    std::uint8_t method, std::string_view tenant, bool background)>;

// Request-header flag bits carried in the top bits of the wire method byte.
// Old clients never set them (methods are small), so a flag-free frame is
// byte-identical to the pre-header wire format.
inline constexpr std::uint8_t kRpcTenantFlag = 0x80;      // body starts with
                                                          // a tenant string
inline constexpr std::uint8_t kRpcBackgroundFlag = 0x40;  // background prio
inline constexpr std::uint8_t kRpcMethodMask = 0x3f;

// Maps a decoded request to an execution shard before the body is parsed.
// Runs on the loop thread, so it must stay cheap (Tiera's extracts the
// leading object-id string and hashes it). Return kAdminKey to run the
// request on the admin pool instead of a shard.
using ShardKeyFn =
    std::function<std::uint64_t(std::uint8_t method, ByteView body)>;

struct ReactorOptions {
  std::size_t loops = 0;   // epoll event loops; 0 = hardware_concurrency
  std::size_t shards = 0;  // worker shards; 0 = hardware_concurrency
  // Per-loop cap on decoded-but-unanswered requests before the loop stops
  // reading its sockets.
  std::size_t max_inflight_per_loop = 1024;
};

class ReactorServer {
 public:
  // Requests whose shard key is kAdminKey run on a small shared pool
  // instead of a shard — for slow administrative verbs (e.g. a blocking
  // profiler capture) that must not stall an execution shard.
  static constexpr std::uint64_t kAdminKey = ~0ull;

  ReactorServer(std::uint16_t port, ReactorOptions options = {});
  ~ReactorServer();

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  // All must be called before start().
  void register_handler(std::uint8_t method, RpcHandler handler);
  void set_shard_key(ShardKeyFn fn);
  // Optional overload front door (see AdmissionFn above). Rejected requests
  // are answered from the loop thread and never reach a shard; they count
  // in tiera_admission_* series, not tiera_rpc_errors_total.
  void set_admission(AdmissionFn fn);

  // Bind + spin up the loops and shards.
  Status start();
  void stop();

  std::uint16_t port() const;
  std::uint64_t requests_served() const { return requests_served_.load(); }
  std::size_t loop_count() const { return loops_.size(); }
  std::size_t shard_count() const { return shards_.size(); }

  // Live connections across all loops. Drops to zero as soon as every
  // client has disconnected — EOF reaps connections directly on the loop.
  std::size_t tracked_connections() const;
  // Decoded requests not yet answered, across all loops.
  std::size_t inflight() const;
  // Aggregate in-flight budget (loops x max_inflight_per_loop); the
  // admission controller's saturation signal is inflight()/capacity.
  std::size_t inflight_capacity() const;
  // Times any loop hit its in-flight cap and paused socket reads.
  std::uint64_t backpressure_pauses() const;

 private:
  class Loop;
  friend class Loop;

  struct Request {
    std::size_t loop;
    std::uint64_t conn_id;
    std::uint64_t request_id;
    std::uint8_t method;
    Bytes body;
  };

  // Called from loop threads: route a decoded request to its shard.
  void dispatch(Request request);
  // Runs on a shard/admin thread: execute the handler, post the response
  // frame back to the owning loop.
  void execute(const Request& request);

  const std::uint16_t requested_port_;
  const ReactorOptions options_;
  std::map<std::uint8_t, RpcHandler> handlers_;  // immutable after start()
  ShardKeyFn shard_key_;
  AdmissionFn admission_;  // immutable after start()

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> next_conn_{0};  // round-robin loop assignment

  std::vector<std::unique_ptr<Loop>> loops_;
  // One single-threaded pool per shard: reuses the pool's trace-context
  // propagation, sojourn accounting and tiera_pool_* gauges.
  std::vector<std::unique_ptr<ThreadPool>> shards_;
  std::vector<std::unique_ptr<PoolMetrics>> shard_metrics_;
  std::unique_ptr<ThreadPool> admin_pool_;

  // Registry series (`tiera_rpc_*`).
  struct Metrics {
    Counter* requests;
    Counter* errors;
    Counter* backpressure_pauses;
    Gauge* connections;
    Gauge* inflight;
    LatencyHistogram* request_latency;
  };
  Metrics metrics_;
};

}  // namespace tiera
