// Pipelined RPC client: many outstanding calls on one connection.
//
// The blocking RpcClient serializes calls, so a closed-loop driver built on
// it can never hold more requests in flight than it has connections — which
// makes real overload (the thing admission control exists for) impossible
// to generate from a single test process. This client decouples send from
// receive: call_async() writes the request frame and returns immediately;
// a reader thread correlates response frames back to callbacks by request
// id. The soak harness runs its open-loop arrival schedule on a handful of
// these, each carrying hundreds of outstanding requests.
//
// Concurrency: call_async() is thread-safe (send mutex); callbacks fire on
// the reader thread and must not block it. On EOF or a socket error every
// pending callback fails with kUnavailable and subsequent calls fail fast.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "net/tcp.h"

namespace tiera {

class AsyncRpcClient {
 public:
  // status is the handler's (or the transport's) verdict; body is the
  // response payload when status is OK.
  using Callback = std::function<void(Status status, Bytes body)>;

  static Result<std::unique_ptr<AsyncRpcClient>> connect(
      const std::string& host, std::uint16_t port);
  ~AsyncRpcClient();

  AsyncRpcClient(const AsyncRpcClient&) = delete;
  AsyncRpcClient& operator=(const AsyncRpcClient&) = delete;

  // Same request-header fields as RpcClient. Not thread-safe against
  // concurrent call_async(); set them before the driver threads start.
  void set_tenant(std::string tenant) { tenant_ = std::move(tenant); }
  void set_background(bool background) { background_ = background; }

  // Sends one request; `done` fires on the reader thread when the matching
  // response arrives (or with the transport error that killed the
  // connection). Returns non-OK — without invoking `done` — when the send
  // itself fails.
  Status call_async(std::uint8_t method, ByteView body, Callback done);

  // Calls issued and not yet completed.
  std::size_t outstanding() const { return outstanding_.load(); }

 private:
  explicit AsyncRpcClient(std::unique_ptr<TcpConnection> conn);

  void reader_loop();
  // Fails every pending callback with `status` and marks the client dead.
  void fail_all(const Status& status);

  std::unique_ptr<TcpConnection> conn_;
  std::string tenant_;
  bool background_ = false;

  std::mutex send_mu_;  // serializes frame writes; also guards next_id_
  std::uint64_t next_id_ = 1;

  std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, Callback> pending_;
  bool dead_ = false;  // guarded by pending_mu_
  Status dead_status_;

  std::atomic<std::size_t> outstanding_{0};
  std::thread reader_;
};

}  // namespace tiera
