#include "net/async_client.h"

#include <utility>
#include <vector>

#include "net/reactor.h"
#include "net/wire.h"

namespace tiera {

Result<std::unique_ptr<AsyncRpcClient>> AsyncRpcClient::connect(
    const std::string& host, std::uint16_t port) {
  auto conn = TcpConnection::connect(host, port);
  if (!conn.ok()) return conn.status();
  return std::unique_ptr<AsyncRpcClient>(
      new AsyncRpcClient(std::move(conn).value()));
}

AsyncRpcClient::AsyncRpcClient(std::unique_ptr<TcpConnection> conn)
    : conn_(std::move(conn)) {
  reader_ = std::thread([this] { reader_loop(); });
}

AsyncRpcClient::~AsyncRpcClient() {
  // shutdown() unblocks the reader's recv_frame; fail_all drains callbacks.
  conn_->shutdown();
  if (reader_.joinable()) reader_.join();
}

Status AsyncRpcClient::call_async(std::uint8_t method, ByteView body,
                                  Callback done) {
  std::uint64_t id;
  {
    // Register before sending: a response cannot race its own registration.
    std::lock_guard send_lock(send_mu_);
    id = next_id_++;
    {
      std::lock_guard lock(pending_mu_);
      if (dead_) return dead_status_;
      pending_.emplace(id, std::move(done));
    }
    WireWriter request;
    request.u64(id);
    std::uint8_t wire_method = method & kRpcMethodMask;
    if (!tenant_.empty()) wire_method |= kRpcTenantFlag;
    if (background_) wire_method |= kRpcBackgroundFlag;
    request.u8(wire_method);
    if (!tenant_.empty()) request.str(tenant_);
    Bytes frame = request.take();
    append(frame, body);
    const Status sent = conn_->send_frame(as_view(frame));
    if (!sent.ok()) {
      std::lock_guard lock(pending_mu_);
      pending_.erase(id);
      return sent;
    }
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void AsyncRpcClient::reader_loop() {
  for (;;) {
    Result<Bytes> reply = conn_->recv_frame();
    if (!reply.ok()) {
      fail_all(reply.status());
      return;
    }
    WireReader reader(as_view(*reply));
    std::uint64_t reply_id = 0;
    std::uint8_t code = 0;
    std::string message;
    Bytes payload;
    if (!reader.u64(reply_id).ok() || !reader.u8(code).ok() ||
        !reader.str(message).ok() || !reader.bytes(payload).ok()) {
      fail_all(Status::Corruption("async rpc: malformed response frame"));
      return;
    }
    Callback done;
    {
      std::lock_guard lock(pending_mu_);
      auto it = pending_.find(reply_id);
      if (it == pending_.end()) continue;  // duplicate/unknown id: drop
      done = std::move(it->second);
      pending_.erase(it);
    }
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    Status status = code == static_cast<std::uint8_t>(StatusCode::kOk)
                        ? Status::Ok()
                        : Status(static_cast<StatusCode>(code),
                                 std::move(message));
    done(std::move(status), std::move(payload));
  }
}

void AsyncRpcClient::fail_all(const Status& status) {
  std::vector<Callback> callbacks;
  {
    std::lock_guard lock(pending_mu_);
    dead_ = true;
    dead_status_ = status;
    callbacks.reserve(pending_.size());
    for (auto& [id, cb] : pending_) callbacks.push_back(std::move(cb));
    pending_.clear();
  }
  for (Callback& cb : callbacks) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    cb(status, {});
  }
}

}  // namespace tiera
