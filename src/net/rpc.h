// Generic request/response RPC over the framed TCP transport.
//
// Request frame : u64 request_id | u8 method | body
// Response frame: u64 request_id | u8 status  | string message | body
//
// The server side is the epoll reactor in net/reactor.h: N event loops own
// the sockets and per-core shard workers run the handlers. RpcServer is a
// thin alias that maps the historical (port, request_threads) signature onto
// ReactorOptions — request_threads becomes the shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/reactor.h"
#include "net/tcp.h"
#include "net/wire.h"

namespace tiera {

class RpcServer : public ReactorServer {
 public:
  RpcServer(std::uint16_t port, std::size_t request_threads);
  RpcServer(std::uint16_t port, ReactorOptions options);
};

// Blocking client: one connection, serialized calls (thread-safe).
class RpcClient {
 public:
  static Result<std::unique_ptr<RpcClient>> connect(const std::string& host,
                                                    std::uint16_t port);

  // Issues a call; returns the response body, or the error status the
  // handler produced.
  Result<Bytes> call(std::uint8_t method, ByteView body);

  // Request-header fields applied to every subsequent call. A non-empty
  // tenant rides in front of the body (kRpcTenantFlag); background marks
  // calls as shed-first priority (kRpcBackgroundFlag). Both default off, so
  // existing callers emit byte-identical frames.
  void set_tenant(std::string tenant);
  void set_background(bool background);

 private:
  explicit RpcClient(std::unique_ptr<TcpConnection> conn)
      : conn_(std::move(conn)) {}

  std::mutex mu_;
  std::unique_ptr<TcpConnection> conn_;
  std::uint64_t next_id_ = 1;
  std::string tenant_;
  bool background_ = false;
};

}  // namespace tiera
