// Generic request/response RPC over the framed TCP transport.
//
// Request frame : u64 request_id | u8 method | body
// Response frame: u64 request_id | u8 status  | string message | body
//
// The server accepts connections on a dedicated thread and services each
// request on a thread pool, matching the prototype's "thread pool dedicated
// to service client requests" (§3).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "net/tcp.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/pool_metrics.h"

namespace tiera {

using RpcHandler = std::function<Result<Bytes>(ByteView body)>;

class RpcServer {
 public:
  RpcServer(std::uint16_t port, std::size_t request_threads);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void register_handler(std::uint8_t method, RpcHandler handler);

  // Bind + start the accept loop.
  Status start();
  void stop();

  std::uint16_t port() const;
  std::uint64_t requests_served() const { return requests_served_.load(); }

  // Reader threads currently tracked (live plus not-yet-reaped); finished
  // readers are reaped on each accept, so this stays bounded by the number
  // of live connections. Exposed for tests.
  std::size_t tracked_readers();

 private:
  void accept_loop();
  void serve_connection(std::shared_ptr<TcpConnection> conn);

  const std::uint16_t requested_port_;
  ThreadPool pool_;
  // Declared after the pool it watches so it is destroyed first.
  PoolMetrics pool_metrics_{pool_};
  std::map<std::uint8_t, RpcHandler> handlers_;

  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};

  // One record per live connection: the reader thread plus a flag it sets
  // just before exiting, so the accept loop can join and drop finished
  // readers instead of accumulating them until stop(). Shutdown joins every
  // remaining reader before the pool stops, so no detached thread can
  // outlive the server; connections are only shutdown() (half-closed) here —
  // the fd is released by the last shared_ptr owner once all readers/pool
  // tasks are done.
  struct Reader {
    std::weak_ptr<TcpConnection> conn;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  void reap_finished_readers_locked();

  std::mutex conns_mu_;
  std::vector<Reader> readers_;

  // Registry series (`tiera_rpc_*`): request/error counters, per-request
  // service latency, and request-pool queue depth.
  struct Metrics {
    Counter* requests;
    Counter* errors;
    Gauge* queue_depth;
    Gauge* readers;
    LatencyHistogram* request_latency;
  };
  Metrics metrics_;
};

// Blocking client: one connection, serialized calls (thread-safe).
class RpcClient {
 public:
  static Result<std::unique_ptr<RpcClient>> connect(const std::string& host,
                                                    std::uint16_t port);

  // Issues a call; returns the response body, or the error status the
  // handler produced.
  Result<Bytes> call(std::uint8_t method, ByteView body);

 private:
  explicit RpcClient(std::unique_ptr<TcpConnection> conn)
      : conn_(std::move(conn)) {}

  std::mutex mu_;
  std::unique_ptr<TcpConnection> conn_;
  std::uint64_t next_id_ = 1;
};

}  // namespace tiera
