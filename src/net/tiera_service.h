// Tiera's RPC service: the application interface layer exposed over the
// network (the Thrift server of the prototype). `TieraServer` fronts a
// TieraInstance; `RemoteTieraClient` gives remote processes the same
// PUT/GET surface the in-process API offers.
#pragma once

#include <memory>

#include "core/instance.h"
#include "net/rpc.h"

namespace tiera {

enum class TieraMethod : std::uint8_t {
  kPut = 1,
  kGet = 2,
  kRemove = 3,
  kStat = 4,
  kAddTags = 5,
  kListTiers = 6,
  kGrowTier = 7,
  kStats = 8,
  kTrace = 9,
  // Structured span export (u32 count + fixed-shape span records); the text
  // rendering — Chrome trace JSON included — happens client-side.
  kTraceSpans = 10,
  // SLO status rows (u32 count + fixed-shape records; doubles cross as
  // micro-unit u64 fixed point).
  kSlo = 11,
  // Sampling profiler capture: u32 duration_ms + u32 interval_us request,
  // perf-style folded stacks ("frame;frame count" lines) in the reply.
  kProfile = 12,
};

class TieraServer {
 public:
  // `port` 0 picks an ephemeral port (see port() after start()).
  TieraServer(TieraInstance& instance, std::uint16_t port,
              std::size_t request_threads = 8);

  Status start();
  void stop();
  std::uint16_t port() const { return server_.port(); }

 private:
  void register_handlers();

  TieraInstance& instance_;
  RpcServer server_;
};

// Legacy binary reply of the kStats verb (empty request body).
struct RemoteStatsSummary {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t removes = 0;
  std::uint64_t objects = 0;
};

// One SLO objective's live state, as reported by the kSlo verb. Latency
// targets/currents are milliseconds; error-rate ones are fractions.
struct RemoteSloRow {
  std::string name;
  std::string tier;     // empty = instance-wide
  std::string signal;   // e.g. get_p99, error_rate
  bool is_latency = true;
  bool violated = false;
  double target = 0;
  double current = 0;
  double window_s = 0;
  std::uint64_t samples = 0;
  double burn_short = 0;
  double burn_long = 0;
  std::uint64_t violations = 0;
};

struct RemoteObjectInfo {
  std::string id;
  std::uint64_t size = 0;
  std::uint64_t access_count = 0;
  bool dirty = false;
  std::vector<std::string> locations;
  std::vector<std::string> tags;
};

class RemoteTieraClient {
 public:
  static Result<std::unique_ptr<RemoteTieraClient>> connect(
      const std::string& host, std::uint16_t port);

  Status put(std::string_view id, ByteView data,
             const std::vector<std::string>& tags = {});
  Result<Bytes> get(std::string_view id);
  Status remove(std::string_view id);
  Result<RemoteObjectInfo> stat(std::string_view id);
  Status add_tags(std::string_view id, const std::vector<std::string>& tags);
  Result<std::vector<std::string>> list_tiers();
  Status grow_tier(std::string_view label, double percent);

  // Rendered metrics registry; `format` is "prom" (Prometheus text
  // exposition), "text" (human-readable) or "top" (live per-tier/per-rule
  // activity tables).
  Result<std::string> stats(std::string_view format);
  Result<RemoteStatsSummary> stats_summary();
  // Text trace of the server's last `last_n` requests.
  Result<std::string> trace(std::uint32_t last_n = 32);
  // Structured spans from the server's trace ring (newest last); feed them
  // to render_chrome_trace() for a chrome://tracing-loadable file.
  Result<std::vector<RequestTracer::Span>> trace_spans(
      std::uint32_t last_n = 512);
  // Live state of every declared SLO.
  Result<std::vector<RemoteSloRow>> slo();
  // Run the server-side sampling profiler for `duration_ms` (sampling every
  // `interval_us`) and return the folded stacks. Blocks for the duration.
  Result<std::string> profile(std::uint32_t duration_ms,
                              std::uint32_t interval_us = 1000);

 private:
  explicit RemoteTieraClient(std::unique_ptr<RpcClient> client)
      : client_(std::move(client)) {}

  std::unique_ptr<RpcClient> client_;
};

}  // namespace tiera
