// Tiera's RPC service: the application interface layer exposed over the
// network (the Thrift server of the prototype). `TieraServer` fronts a
// TieraInstance; `RemoteTieraClient` gives remote processes the same
// PUT/GET surface the in-process API offers.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "core/admission.h"
#include "core/instance.h"
#include "net/rpc.h"

namespace tiera {

enum class TieraMethod : std::uint8_t {
  kPut = 1,
  kGet = 2,
  kRemove = 3,
  kStat = 4,
  kAddTags = 5,
  kListTiers = 6,
  kGrowTier = 7,
  kStats = 8,
  kTrace = 9,
  // Structured span export (u32 count + fixed-shape span records); the text
  // rendering — Chrome trace JSON included — happens client-side.
  kTraceSpans = 10,
  // SLO status rows (u32 count + fixed-shape records; doubles cross as
  // micro-unit u64 fixed point).
  kSlo = 11,
  // Sampling profiler capture: u32 duration_ms + u32 interval_us request,
  // perf-style folded stacks ("frame;frame count" lines) in the reply.
  kProfile = 12,
  // Heat & spend report: u32 top_n request; structured per-tier top-K hot
  // keys + heat histograms and the cost-meter tier/rule breakdown. Rates
  // cross as micro-unit u64; dollars as nano-unit u64 (request charges are
  // micro-dollar sized, so micro units would truncate them to zero).
  kHeat = 13,
};

class TieraServer {
 public:
  // `port` 0 picks an ephemeral port (see port() after start()).
  // `request_threads` becomes the reactor's shard count.
  TieraServer(TieraInstance& instance, std::uint16_t port,
              std::size_t request_threads = 8);
  // Full control over the event-loop/shard geometry.
  TieraServer(TieraInstance& instance, std::uint16_t port,
              ReactorOptions options);

  ~TieraServer();

  // Installs the overload front door (core/admission.h): requests are
  // admitted/shed on the reactor loop threads, and a poller thread feeds
  // the controller the SLO burn-rate and reactor-saturation signals every
  // ~20ms of wall time. Must be called before start(). Methods map to the
  // priority ladder as: stats/trace/profile/... -> admin (never shed),
  // GET/STAT -> get, PUT/REMOVE/ADD_TAGS -> put; the client-set background
  // flag demotes any non-admin request to background.
  void enable_admission(const AdmissionConfig& config);
  const AdmissionController* admission() const { return admission_.get(); }

  Status start();
  void stop();
  std::uint16_t port() const { return server_.port(); }
  std::size_t loop_count() const { return server_.loop_count(); }
  std::size_t shard_count() const { return server_.shard_count(); }

 private:
  void register_handlers();
  void admission_poll_loop();

  TieraInstance& instance_;
  RpcServer server_;
  std::unique_ptr<AdmissionController> admission_;
  std::thread admission_poller_;
  std::atomic<bool> poller_running_{false};
};

// Legacy binary reply of the kStats verb (empty request body).
struct RemoteStatsSummary {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t removes = 0;
  std::uint64_t objects = 0;
};

// One SLO objective's live state, as reported by the kSlo verb. Latency
// targets/currents are milliseconds; error-rate ones are fractions.
struct RemoteSloRow {
  std::string name;
  std::string tier;     // empty = instance-wide
  std::string signal;   // e.g. get_p99, error_rate
  bool is_latency = true;
  bool violated = false;
  double target = 0;
  double current = 0;
  double window_s = 0;
  std::uint64_t samples = 0;
  double burn_short = 0;
  double burn_long = 0;
  std::uint64_t violations = 0;
};

// --- kHeat report rows -------------------------------------------------------

struct RemoteHeatEntry {
  std::string key;
  std::uint64_t estimate = 0;  // decayed access count
  double rate_per_s = 0;       // modelled time
};

struct RemoteTierHeat {
  std::string tier;
  std::vector<RemoteHeatEntry> top;        // hottest first
  std::vector<std::uint64_t> histogram;    // [2^i, 2^(i+1)) estimate buckets
  std::uint64_t tracked_keys = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t evictions = 0;
};

struct RemoteTierCost {
  std::string tier;
  double storage_dollars = 0;
  double request_dollars = 0;
  double egress_dollars = 0;
  double monthly_burn_dollars = 0;
  std::uint64_t read_bytes = 0;   // client-facing, tiera_tier_read_bytes_total
  std::uint64_t write_bytes = 0;
};

struct RemoteRuleCost {
  std::uint64_t rule_id = 0;
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t objects = 0;
  double dollars = 0;
};

// Everything `tiera_cli heat` renders. `enabled` is false when the server
// instance runs with track_heat off (all other fields are then empty).
struct RemoteHeatReport {
  bool enabled = false;
  double half_life_s = 0;
  std::uint64_t decay_epochs = 0;
  std::uint64_t memory_bytes = 0;
  std::vector<RemoteTierHeat> tiers;
  double total_dollars = 0;
  double monthly_burn_dollars = 0;
  double modelled_seconds = 0;
  std::vector<RemoteTierCost> tier_costs;
  std::vector<RemoteRuleCost> rule_costs;
};

struct RemoteObjectInfo {
  std::string id;
  std::uint64_t size = 0;
  std::uint64_t access_count = 0;
  bool dirty = false;
  std::vector<std::string> locations;
  std::vector<std::string> tags;
};

class RemoteTieraClient {
 public:
  static Result<std::unique_ptr<RemoteTieraClient>> connect(
      const std::string& host, std::uint16_t port);

  Status put(std::string_view id, ByteView data,
             const std::vector<std::string>& tags = {});
  Result<Bytes> get(std::string_view id);
  Status remove(std::string_view id);
  Result<RemoteObjectInfo> stat(std::string_view id);
  Status add_tags(std::string_view id, const std::vector<std::string>& tags);
  Result<std::vector<std::string>> list_tiers();
  Status grow_tier(std::string_view label, double percent);

  // Rendered metrics registry; `format` is "prom" (Prometheus text
  // exposition), "text" (human-readable) or "top" (live per-tier/per-rule
  // activity tables). "top:slo,pool,..." renders only the named top
  // sections (header,tiers,slo,rules,pool,heat,cost,admission).
  Result<std::string> stats(std::string_view format);
  Result<RemoteStatsSummary> stats_summary();
  // Text trace of the server's last `last_n` requests.
  Result<std::string> trace(std::uint32_t last_n = 32);
  // Structured spans from the server's trace ring (newest last); feed them
  // to render_chrome_trace() for a chrome://tracing-loadable file.
  Result<std::vector<RequestTracer::Span>> trace_spans(
      std::uint32_t last_n = 512);
  // Live state of every declared SLO.
  Result<std::vector<RemoteSloRow>> slo();
  // Run the server-side sampling profiler for `duration_ms` (sampling every
  // `interval_us`) and return the folded stacks. Blocks for the duration.
  Result<std::string> profile(std::uint32_t duration_ms,
                              std::uint32_t interval_us = 1000);
  // Per-tier hot keys (top `top_n`), heat histograms and the live cost
  // breakdown.
  Result<RemoteHeatReport> heat(std::uint32_t top_n = 20);

 private:
  explicit RemoteTieraClient(std::unique_ptr<RpcClient> client)
      : client_(std::move(client)) {}

  std::unique_ptr<RpcClient> client_;
};

}  // namespace tiera
