#include "net/tiera_service.h"

#include <cstdio>

#include "obs/profiler.h"
#include "obs/stage.h"

namespace tiera {

namespace {

void write_string_list(WireWriter& w, const std::vector<std::string>& items) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) w.str(item);
}

Status read_string_list(WireReader& r, std::vector<std::string>& items) {
  std::uint32_t n;
  TIERA_RETURN_IF_ERROR(r.u32(n));
  items.clear();
  items.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string s;
    TIERA_RETURN_IF_ERROR(r.str(s));
    items.push_back(std::move(s));
  }
  return Status::Ok();
}

}  // namespace

TieraServer::TieraServer(TieraInstance& instance, std::uint16_t port,
                         std::size_t request_threads)
    : instance_(instance), server_(port, request_threads) {
  register_handlers();
}

Status TieraServer::start() { return server_.start(); }

void TieraServer::stop() { server_.stop(); }

void TieraServer::register_handlers() {
  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kPut),
      [this](ByteView body) -> Result<Bytes> {
        // The RPC-level scope owns the breakdown for remote ops; the nested
        // instance-level scope inside put() is inert, so rpc.decode and the
        // engine stages land in the same per-op rows.
        OpStageScope stage_scope(StageOp::kPut);
        WireReader r(body);
        std::string id;
        Bytes data;
        std::vector<std::string> tags;
        {
          StageTimer decode_stage(Stage::kRpcDecode);
          TIERA_RETURN_IF_ERROR(r.str(id));
          TIERA_RETURN_IF_ERROR(r.bytes(data));
          TIERA_RETURN_IF_ERROR(read_string_list(r, tags));
        }
        TIERA_RETURN_IF_ERROR(instance_.put(id, as_view(data), tags));
        return Bytes{};
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kGet),
      [this](ByteView body) -> Result<Bytes> {
        OpStageScope stage_scope(StageOp::kGet);
        WireReader r(body);
        std::string id;
        {
          StageTimer decode_stage(Stage::kRpcDecode);
          TIERA_RETURN_IF_ERROR(r.str(id));
        }
        return instance_.get(id);
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kRemove),
      [this](ByteView body) -> Result<Bytes> {
        OpStageScope stage_scope(StageOp::kDelete);
        WireReader r(body);
        std::string id;
        {
          StageTimer decode_stage(Stage::kRpcDecode);
          TIERA_RETURN_IF_ERROR(r.str(id));
        }
        TIERA_RETURN_IF_ERROR(instance_.remove(id));
        return Bytes{};
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kStat),
      [this](ByteView body) -> Result<Bytes> {
        WireReader r(body);
        std::string id;
        TIERA_RETURN_IF_ERROR(r.str(id));
        Result<ObjectMeta> meta = instance_.stat(id);
        if (!meta.ok()) return meta.status();
        WireWriter w;
        w.str(meta->id);
        w.u64(meta->size);
        w.u64(meta->access_count);
        w.u8(meta->dirty ? 1 : 0);
        write_string_list(w, {meta->locations.begin(), meta->locations.end()});
        write_string_list(w, {meta->tags.begin(), meta->tags.end()});
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kAddTags),
      [this](ByteView body) -> Result<Bytes> {
        WireReader r(body);
        std::string id;
        std::vector<std::string> tags;
        TIERA_RETURN_IF_ERROR(r.str(id));
        TIERA_RETURN_IF_ERROR(read_string_list(r, tags));
        TIERA_RETURN_IF_ERROR(instance_.add_tags(id, tags));
        return Bytes{};
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kListTiers),
      [this](ByteView) -> Result<Bytes> {
        WireWriter w;
        write_string_list(w, instance_.tier_labels());
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kGrowTier),
      [this](ByteView body) -> Result<Bytes> {
        WireReader r(body);
        std::string label;
        std::uint64_t percent_milli;
        TIERA_RETURN_IF_ERROR(r.str(label));
        TIERA_RETURN_IF_ERROR(r.u64(percent_milli));
        TIERA_RETURN_IF_ERROR(instance_.engine_grow(
            label, static_cast<double>(percent_milli) / 1000.0));
        return Bytes{};
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kStats),
      [this](ByteView body) -> Result<Bytes> {
        // With a format string in the body, render the process-wide metrics
        // registry; an empty body keeps the legacy binary reply.
        if (!body.empty()) {
          WireReader r(body);
          std::string format;
          TIERA_RETURN_IF_ERROR(r.str(format));
          std::string text;
          if (format == "prom") {
            text = MetricsRegistry::global().render_prometheus();
          } else if (format == "text") {
            text = MetricsRegistry::global().render_text();
          } else if (format == "top") {
            text = instance_.render_top();
          } else {
            return Status::InvalidArgument("unknown stats format: " + format);
          }
          return to_bytes(text);
        }
        WireWriter w;
        w.u64(instance_.stats().puts.load());
        w.u64(instance_.stats().gets.load());
        w.u64(instance_.stats().removes.load());
        w.u64(instance_.object_count());
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kTrace),
      [this](ByteView body) -> Result<Bytes> {
        std::uint32_t last_n = 32;
        if (!body.empty()) {
          WireReader r(body);
          TIERA_RETURN_IF_ERROR(r.u32(last_n));
        }
        return to_bytes(instance_.tracer().dump(last_n));
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kSlo),
      [this](ByteView) -> Result<Bytes> {
        const std::vector<SloStatus> rows = instance_.slo().status();
        WireWriter w;
        // Doubles cross as micro-unit u64 fixed point (the wire only does
        // integers), same convention as kTraceSpans durations.
        const auto micros = [](double v) {
          return static_cast<std::uint64_t>(v < 0 ? 0 : v * 1e6);
        };
        w.u32(static_cast<std::uint32_t>(rows.size()));
        for (const auto& row : rows) {
          w.str(row.name);
          w.str(row.tier);
          w.str(row.signal);
          w.u8(row.is_latency ? 1 : 0);
          w.u8(row.violated ? 1 : 0);
          w.u64(micros(row.target));
          w.u64(micros(row.current));
          w.u64(micros(row.window_s));
          w.u64(row.samples);
          w.u64(micros(row.burn_short));
          w.u64(micros(row.burn_long));
          w.u64(row.violations);
        }
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kProfile),
      [](ByteView body) -> Result<Bytes> {
        std::uint32_t duration_ms = 1000;
        std::uint32_t interval_us = 1000;
        if (!body.empty()) {
          WireReader r(body);
          TIERA_RETURN_IF_ERROR(r.u32(duration_ms));
          TIERA_RETURN_IF_ERROR(r.u32(interval_us));
        }
        // Blocks one request-pool worker for the capture window; the
        // profiler itself refuses concurrent captures.
        Result<std::string> folded =
            Profiler::global().capture(duration_ms, interval_us);
        if (!folded.ok()) return folded.status();
        return to_bytes(*folded);
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kTraceSpans),
      [this](ByteView body) -> Result<Bytes> {
        std::uint32_t last_n = 512;
        if (!body.empty()) {
          WireReader r(body);
          TIERA_RETURN_IF_ERROR(r.u32(last_n));
        }
        const std::vector<RequestTracer::Span> spans =
            instance_.tracer().snapshot(last_n);
        WireWriter w;
        w.u32(static_cast<std::uint32_t>(spans.size()));
        for (const auto& span : spans) {
          w.u64(span.seq);
          w.u64(span.trace_id);
          w.u64(span.span_id);
          w.u64(span.parent_span_id);
          w.u64(span.rule_id);
          w.u8(static_cast<std::uint8_t>(span.op));
          w.str(span.name);
          w.str(span.object_id);
          w.str(span.tier);
          w.u64(static_cast<std::uint64_t>(span.start_us));
          // Duration crosses the wire as nanoseconds to stay integral.
          w.u64(static_cast<std::uint64_t>(span.duration_ms * 1e6));
          w.u8(span.ok ? 1 : 0);
        }
        return w.take();
      });
}

Result<std::unique_ptr<RemoteTieraClient>> RemoteTieraClient::connect(
    const std::string& host, std::uint16_t port) {
  auto client = RpcClient::connect(host, port);
  if (!client.ok()) return client.status();
  return std::unique_ptr<RemoteTieraClient>(
      new RemoteTieraClient(std::move(client).value()));
}

Status RemoteTieraClient::put(std::string_view id, ByteView data,
                              const std::vector<std::string>& tags) {
  WireWriter w;
  w.str(id);
  w.bytes(data);
  write_string_list(w, tags);
  return client_
      ->call(static_cast<std::uint8_t>(TieraMethod::kPut), as_view(w.data()))
      .status();
}

Result<Bytes> RemoteTieraClient::get(std::string_view id) {
  WireWriter w;
  w.str(id);
  return client_->call(static_cast<std::uint8_t>(TieraMethod::kGet),
                       as_view(w.data()));
}

Status RemoteTieraClient::remove(std::string_view id) {
  WireWriter w;
  w.str(id);
  return client_
      ->call(static_cast<std::uint8_t>(TieraMethod::kRemove),
             as_view(w.data()))
      .status();
}

Result<RemoteObjectInfo> RemoteTieraClient::stat(std::string_view id) {
  WireWriter w;
  w.str(id);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kStat), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  RemoteObjectInfo info;
  std::uint8_t dirty = 0;
  TIERA_RETURN_IF_ERROR(r.str(info.id));
  TIERA_RETURN_IF_ERROR(r.u64(info.size));
  TIERA_RETURN_IF_ERROR(r.u64(info.access_count));
  TIERA_RETURN_IF_ERROR(r.u8(dirty));
  TIERA_RETURN_IF_ERROR(read_string_list(r, info.locations));
  TIERA_RETURN_IF_ERROR(read_string_list(r, info.tags));
  info.dirty = dirty != 0;
  return info;
}

Status RemoteTieraClient::add_tags(std::string_view id,
                                   const std::vector<std::string>& tags) {
  WireWriter w;
  w.str(id);
  write_string_list(w, tags);
  return client_
      ->call(static_cast<std::uint8_t>(TieraMethod::kAddTags),
             as_view(w.data()))
      .status();
}

Result<std::vector<std::string>> RemoteTieraClient::list_tiers() {
  Result<Bytes> reply =
      client_->call(static_cast<std::uint8_t>(TieraMethod::kListTiers), {});
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  std::vector<std::string> tiers;
  TIERA_RETURN_IF_ERROR(read_string_list(r, tiers));
  return tiers;
}

Result<std::string> RemoteTieraClient::stats(std::string_view format) {
  WireWriter w;
  w.str(format);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kStats), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  return std::string(reply->begin(), reply->end());
}

Result<RemoteStatsSummary> RemoteTieraClient::stats_summary() {
  Result<Bytes> reply =
      client_->call(static_cast<std::uint8_t>(TieraMethod::kStats), {});
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  RemoteStatsSummary s;
  TIERA_RETURN_IF_ERROR(r.u64(s.puts));
  TIERA_RETURN_IF_ERROR(r.u64(s.gets));
  TIERA_RETURN_IF_ERROR(r.u64(s.removes));
  TIERA_RETURN_IF_ERROR(r.u64(s.objects));
  return s;
}

Result<std::string> RemoteTieraClient::trace(std::uint32_t last_n) {
  WireWriter w;
  w.u32(last_n);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kTrace), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  return std::string(reply->begin(), reply->end());
}

Result<std::vector<RequestTracer::Span>> RemoteTieraClient::trace_spans(
    std::uint32_t last_n) {
  WireWriter w;
  w.u32(last_n);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kTraceSpans), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  std::uint32_t count = 0;
  TIERA_RETURN_IF_ERROR(r.u32(count));
  std::vector<RequestTracer::Span> spans;
  spans.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RequestTracer::Span span;
    std::uint64_t start_us = 0, duration_ns = 0;
    std::uint8_t op = 0, ok = 0;
    std::string name, object_id, tier;
    TIERA_RETURN_IF_ERROR(r.u64(span.seq));
    TIERA_RETURN_IF_ERROR(r.u64(span.trace_id));
    TIERA_RETURN_IF_ERROR(r.u64(span.span_id));
    TIERA_RETURN_IF_ERROR(r.u64(span.parent_span_id));
    TIERA_RETURN_IF_ERROR(r.u64(span.rule_id));
    TIERA_RETURN_IF_ERROR(r.u8(op));
    TIERA_RETURN_IF_ERROR(r.str(name));
    TIERA_RETURN_IF_ERROR(r.str(object_id));
    TIERA_RETURN_IF_ERROR(r.str(tier));
    TIERA_RETURN_IF_ERROR(r.u64(start_us));
    TIERA_RETURN_IF_ERROR(r.u64(duration_ns));
    TIERA_RETURN_IF_ERROR(r.u8(ok));
    span.op = static_cast<TraceOp>(op);
    std::snprintf(span.name, sizeof(span.name), "%s", name.c_str());
    std::snprintf(span.object_id, sizeof(span.object_id), "%s",
                  object_id.c_str());
    std::snprintf(span.tier, sizeof(span.tier), "%s", tier.c_str());
    span.start_us = static_cast<std::int64_t>(start_us);
    span.duration_ms = static_cast<double>(duration_ns) / 1e6;
    span.ok = ok != 0;
    spans.push_back(span);
  }
  return spans;
}

Result<std::vector<RemoteSloRow>> RemoteTieraClient::slo() {
  Result<Bytes> reply =
      client_->call(static_cast<std::uint8_t>(TieraMethod::kSlo), {});
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  std::uint32_t count = 0;
  TIERA_RETURN_IF_ERROR(r.u32(count));
  std::vector<RemoteSloRow> rows;
  rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RemoteSloRow row;
    std::uint8_t is_latency = 0, violated = 0;
    std::uint64_t target = 0, current = 0, window = 0, burn_short = 0,
                  burn_long = 0;
    TIERA_RETURN_IF_ERROR(r.str(row.name));
    TIERA_RETURN_IF_ERROR(r.str(row.tier));
    TIERA_RETURN_IF_ERROR(r.str(row.signal));
    TIERA_RETURN_IF_ERROR(r.u8(is_latency));
    TIERA_RETURN_IF_ERROR(r.u8(violated));
    TIERA_RETURN_IF_ERROR(r.u64(target));
    TIERA_RETURN_IF_ERROR(r.u64(current));
    TIERA_RETURN_IF_ERROR(r.u64(window));
    TIERA_RETURN_IF_ERROR(r.u64(row.samples));
    TIERA_RETURN_IF_ERROR(r.u64(burn_short));
    TIERA_RETURN_IF_ERROR(r.u64(burn_long));
    TIERA_RETURN_IF_ERROR(r.u64(row.violations));
    row.is_latency = is_latency != 0;
    row.violated = violated != 0;
    row.target = static_cast<double>(target) / 1e6;
    row.current = static_cast<double>(current) / 1e6;
    row.window_s = static_cast<double>(window) / 1e6;
    row.burn_short = static_cast<double>(burn_short) / 1e6;
    row.burn_long = static_cast<double>(burn_long) / 1e6;
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::string> RemoteTieraClient::profile(std::uint32_t duration_ms,
                                               std::uint32_t interval_us) {
  WireWriter w;
  w.u32(duration_ms);
  w.u32(interval_us);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kProfile), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  return std::string(reply->begin(), reply->end());
}

Status RemoteTieraClient::grow_tier(std::string_view label, double percent) {
  WireWriter w;
  w.str(label);
  w.u64(static_cast<std::uint64_t>(percent * 1000.0));
  return client_
      ->call(static_cast<std::uint8_t>(TieraMethod::kGrowTier),
             as_view(w.data()))
      .status();
}

}  // namespace tiera
