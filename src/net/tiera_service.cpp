#include "net/tiera_service.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"
#include "obs/profiler.h"
#include "obs/stage.h"

namespace tiera {

namespace {

void write_string_list(WireWriter& w, const std::vector<std::string>& items) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) w.str(item);
}

Status read_string_list(WireReader& r, std::vector<std::string>& items) {
  std::uint32_t n;
  TIERA_RETURN_IF_ERROR(r.u32(n));
  items.clear();
  items.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string s;
    TIERA_RETURN_IF_ERROR(r.str(s));
    items.push_back(std::move(s));
  }
  return Status::Ok();
}

// Routes each request to an execution shard before the body is fully
// parsed. Data verbs carry the object id as the leading wire string, so the
// same object always lands on the same single-threaded shard (its requests
// run FIFO on one core and never contend on the instance's striped object
// locks). Everything else — stats, traces, and especially the blocking
// kProfile capture — goes to the admin pool so it cannot stall a shard.
std::uint64_t tiera_shard_key(std::uint8_t method, ByteView body) {
  switch (static_cast<TieraMethod>(method)) {
    case TieraMethod::kPut:
    case TieraMethod::kGet:
    case TieraMethod::kRemove:
    case TieraMethod::kStat:
    case TieraMethod::kAddTags: {
      if (body.size() < 4) return ReactorServer::kAdminKey;  // malformed
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) len |= std::uint32_t(body[i]) << (8 * i);
      if (body.size() - 4 < len) return ReactorServer::kAdminKey;
      // Clear the top bit so a hash can never collide with kAdminKey.
      return fnv1a64(ByteView(body.data() + 4, len)) & 0x7fffffffffffffffull;
    }
    default:
      return ReactorServer::kAdminKey;
  }
}

// Maps a wire method to its rung on the admission ladder. Data verbs carry
// real priorities; everything else is admin — precisely the traffic an
// operator needs while the server sheds (top, stats, traces).
RequestPriority tiera_priority(std::uint8_t method, bool background) {
  switch (static_cast<TieraMethod>(method)) {
    case TieraMethod::kGet:
    case TieraMethod::kStat:
      return background ? RequestPriority::kBackground : RequestPriority::kGet;
    case TieraMethod::kPut:
    case TieraMethod::kRemove:
    case TieraMethod::kAddTags:
      return background ? RequestPriority::kBackground : RequestPriority::kPut;
    default:
      return RequestPriority::kAdmin;
  }
}

}  // namespace

TieraServer::TieraServer(TieraInstance& instance, std::uint16_t port,
                         std::size_t request_threads)
    : instance_(instance), server_(port, request_threads) {
  server_.set_shard_key(tiera_shard_key);
  register_handlers();
}

TieraServer::TieraServer(TieraInstance& instance, std::uint16_t port,
                         ReactorOptions options)
    : instance_(instance), server_(port, options) {
  server_.set_shard_key(tiera_shard_key);
  register_handlers();
}

TieraServer::~TieraServer() { stop(); }

void TieraServer::enable_admission(const AdmissionConfig& config) {
  admission_ =
      std::make_unique<AdmissionController>(config, MetricsRegistry::global());
  server_.set_admission(
      [this](std::uint8_t method, std::string_view tenant, bool background) {
        return admission_->admit(tenant, tiera_priority(method, background));
      });
  instance_.set_admission_view(admission_.get());
}

// Feeds the controller its two pressure signals: the worst short-window
// burn rate across the instance's SLOs, and how full the reactor's
// in-flight budget is. 20ms of wall time per tick is fast enough to catch
// a flash crowd well before the SLO windows fill, and cheap enough to
// leave running for the server's lifetime.
void TieraServer::admission_poll_loop() {
  while (poller_running_.load(std::memory_order_acquire)) {
    double burn = 0.0;
    for (const SloStatus& row : instance_.slo().status()) {
      burn = std::max(burn, row.burn_short);
    }
    const std::size_t capacity = server_.inflight_capacity();
    const double inflight_fraction =
        capacity == 0 ? 0.0
                      : static_cast<double>(server_.inflight()) /
                            static_cast<double>(capacity);
    admission_->update_signals(burn, inflight_fraction);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status TieraServer::start() {
  TIERA_RETURN_IF_ERROR(server_.start());
  if (admission_ && !admission_poller_.joinable()) {
    poller_running_.store(true, std::memory_order_release);
    admission_poller_ = std::thread([this] { admission_poll_loop(); });
  }
  return Status::Ok();
}

void TieraServer::stop() {
  if (admission_poller_.joinable()) {
    poller_running_.store(false, std::memory_order_release);
    admission_poller_.join();
  }
  server_.stop();
  // The controller dies with this server; stop `top` from dereferencing it.
  if (admission_) instance_.set_admission_view(nullptr);
}

void TieraServer::register_handlers() {
  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kPut),
      [this](ByteView body) -> Result<Bytes> {
        // The RPC-level scope owns the breakdown for remote ops; the nested
        // instance-level scope inside put() is inert, so rpc.decode and the
        // engine stages land in the same per-op rows.
        OpStageScope stage_scope(StageOp::kPut);
        WireReader r(body);
        std::string id;
        Bytes data;
        std::vector<std::string> tags;
        {
          StageTimer decode_stage(Stage::kRpcDecode);
          TIERA_RETURN_IF_ERROR(r.str(id));
          TIERA_RETURN_IF_ERROR(r.bytes(data));
          TIERA_RETURN_IF_ERROR(read_string_list(r, tags));
        }
        TIERA_RETURN_IF_ERROR(instance_.put(id, as_view(data), tags));
        return Bytes{};
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kGet),
      [this](ByteView body) -> Result<Bytes> {
        OpStageScope stage_scope(StageOp::kGet);
        WireReader r(body);
        std::string id;
        {
          StageTimer decode_stage(Stage::kRpcDecode);
          TIERA_RETURN_IF_ERROR(r.str(id));
        }
        return instance_.get(id);
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kRemove),
      [this](ByteView body) -> Result<Bytes> {
        OpStageScope stage_scope(StageOp::kDelete);
        WireReader r(body);
        std::string id;
        {
          StageTimer decode_stage(Stage::kRpcDecode);
          TIERA_RETURN_IF_ERROR(r.str(id));
        }
        TIERA_RETURN_IF_ERROR(instance_.remove(id));
        return Bytes{};
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kStat),
      [this](ByteView body) -> Result<Bytes> {
        WireReader r(body);
        std::string id;
        TIERA_RETURN_IF_ERROR(r.str(id));
        Result<ObjectMeta> meta = instance_.stat(id);
        if (!meta.ok()) return meta.status();
        WireWriter w;
        w.str(meta->id);
        w.u64(meta->size);
        w.u64(meta->access_count);
        w.u8(meta->dirty ? 1 : 0);
        write_string_list(w, {meta->locations.begin(), meta->locations.end()});
        write_string_list(w, {meta->tags.begin(), meta->tags.end()});
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kAddTags),
      [this](ByteView body) -> Result<Bytes> {
        WireReader r(body);
        std::string id;
        std::vector<std::string> tags;
        TIERA_RETURN_IF_ERROR(r.str(id));
        TIERA_RETURN_IF_ERROR(read_string_list(r, tags));
        TIERA_RETURN_IF_ERROR(instance_.add_tags(id, tags));
        return Bytes{};
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kListTiers),
      [this](ByteView) -> Result<Bytes> {
        WireWriter w;
        write_string_list(w, instance_.tier_labels());
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kGrowTier),
      [this](ByteView body) -> Result<Bytes> {
        WireReader r(body);
        std::string label;
        std::uint64_t percent_milli;
        TIERA_RETURN_IF_ERROR(r.str(label));
        TIERA_RETURN_IF_ERROR(r.u64(percent_milli));
        TIERA_RETURN_IF_ERROR(instance_.engine_grow(
            label, static_cast<double>(percent_milli) / 1000.0));
        return Bytes{};
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kStats),
      [this](ByteView body) -> Result<Bytes> {
        // With a format string in the body, render the process-wide metrics
        // registry; an empty body keeps the legacy binary reply.
        if (!body.empty()) {
          WireReader r(body);
          std::string format;
          TIERA_RETURN_IF_ERROR(r.str(format));
          std::string text;
          if (format == "prom") {
            text = MetricsRegistry::global().render_prometheus();
          } else if (format == "text") {
            text = MetricsRegistry::global().render_text();
          } else if (format == "top") {
            text = instance_.render_top();
          } else if (format.rfind("top:", 0) == 0) {
            // "top:slo,pool" renders only the named sections.
            text = instance_.render_top(
                std::string_view(format).substr(4));  // skip "top:"
          } else {
            return Status::InvalidArgument("unknown stats format: " + format);
          }
          return to_bytes(text);
        }
        WireWriter w;
        w.u64(instance_.stats().puts.load());
        w.u64(instance_.stats().gets.load());
        w.u64(instance_.stats().removes.load());
        w.u64(instance_.object_count());
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kTrace),
      [this](ByteView body) -> Result<Bytes> {
        std::uint32_t last_n = 32;
        if (!body.empty()) {
          WireReader r(body);
          TIERA_RETURN_IF_ERROR(r.u32(last_n));
        }
        return to_bytes(instance_.tracer().dump(last_n));
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kSlo),
      [this](ByteView) -> Result<Bytes> {
        const std::vector<SloStatus> rows = instance_.slo().status();
        WireWriter w;
        // Doubles cross as micro-unit u64 fixed point (the wire only does
        // integers), same convention as kTraceSpans durations.
        const auto micros = [](double v) {
          return static_cast<std::uint64_t>(v < 0 ? 0 : v * 1e6);
        };
        w.u32(static_cast<std::uint32_t>(rows.size()));
        for (const auto& row : rows) {
          w.str(row.name);
          w.str(row.tier);
          w.str(row.signal);
          w.u8(row.is_latency ? 1 : 0);
          w.u8(row.violated ? 1 : 0);
          w.u64(micros(row.target));
          w.u64(micros(row.current));
          w.u64(micros(row.window_s));
          w.u64(row.samples);
          w.u64(micros(row.burn_short));
          w.u64(micros(row.burn_long));
          w.u64(row.violations);
        }
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kProfile),
      [](ByteView body) -> Result<Bytes> {
        std::uint32_t duration_ms = 1000;
        std::uint32_t interval_us = 1000;
        if (!body.empty()) {
          WireReader r(body);
          TIERA_RETURN_IF_ERROR(r.u32(duration_ms));
          TIERA_RETURN_IF_ERROR(r.u32(interval_us));
        }
        // Blocks one request-pool worker for the capture window; the
        // profiler itself refuses concurrent captures.
        Result<std::string> folded =
            Profiler::global().capture(duration_ms, interval_us);
        if (!folded.ok()) return folded.status();
        return to_bytes(*folded);
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kHeat),
      [this](ByteView body) -> Result<Bytes> {
        std::uint32_t top_n = 20;
        if (!body.empty()) {
          WireReader r(body);
          TIERA_RETURN_IF_ERROR(r.u32(top_n));
        }
        WireWriter w;
        const HeatTracker* heat = instance_.heat();
        const CostMeter* cost = instance_.cost_meter();
        w.u8(heat != nullptr ? 1 : 0);
        if (heat == nullptr) return w.take();
        // Rates cross as micro units, dollars as nano units (see header).
        const auto micros = [](double v) {
          return static_cast<std::uint64_t>(v < 0 ? 0 : v * 1e6);
        };
        const auto nanos = [](double v) {
          return static_cast<std::uint64_t>(v < 0 ? 0 : v * 1e9);
        };
        const HeatSnapshot snap = heat->snapshot(top_n);
        w.u64(micros(snap.half_life_s));
        w.u64(snap.decay_epochs);
        w.u64(snap.memory_bytes);
        w.u32(static_cast<std::uint32_t>(snap.tiers.size()));
        for (const auto& tier : snap.tiers) {
          w.str(tier.tier);
          w.u32(static_cast<std::uint32_t>(tier.top.size()));
          for (const auto& hot : tier.top) {
            w.str(hot.key);
            w.u64(hot.estimate);
            w.u64(micros(hot.rate_per_s));
          }
          w.u32(static_cast<std::uint32_t>(tier.histogram.size()));
          for (const std::uint64_t bucket : tier.histogram) w.u64(bucket);
          w.u64(tier.tracked_keys);
          w.u64(tier.records);
          w.u64(tier.bytes);
          w.u64(tier.evictions);
        }
        const CostSnapshot costs =
            cost != nullptr ? cost->snapshot() : CostSnapshot{};
        w.u64(nanos(costs.total_dollars));
        w.u64(nanos(costs.monthly_burn_dollars));
        w.u64(micros(costs.modelled_seconds));
        w.u32(static_cast<std::uint32_t>(costs.tiers.size()));
        for (const auto& tier : costs.tiers) {
          w.str(tier.tier);
          w.u64(nanos(tier.storage_dollars));
          w.u64(nanos(tier.request_dollars));
          w.u64(nanos(tier.egress_dollars));
          w.u64(nanos(tier.monthly_burn_dollars));
          w.u64(tier.client_read_bytes);
          w.u64(tier.client_write_bytes);
        }
        w.u32(static_cast<std::uint32_t>(costs.rules.size()));
        for (const auto& rule : costs.rules) {
          w.u64(rule.rule_id);
          w.str(rule.rule_name);
          w.u64(rule.bytes_moved);
          w.u64(rule.objects_moved);
          w.u64(nanos(rule.dollars));
        }
        return w.take();
      });

  server_.register_handler(
      static_cast<std::uint8_t>(TieraMethod::kTraceSpans),
      [this](ByteView body) -> Result<Bytes> {
        std::uint32_t last_n = 512;
        if (!body.empty()) {
          WireReader r(body);
          TIERA_RETURN_IF_ERROR(r.u32(last_n));
        }
        const std::vector<RequestTracer::Span> spans =
            instance_.tracer().snapshot(last_n);
        WireWriter w;
        w.u32(static_cast<std::uint32_t>(spans.size()));
        for (const auto& span : spans) {
          w.u64(span.seq);
          w.u64(span.trace_id);
          w.u64(span.span_id);
          w.u64(span.parent_span_id);
          w.u64(span.rule_id);
          w.u8(static_cast<std::uint8_t>(span.op));
          w.str(span.name);
          w.str(span.object_id);
          w.str(span.tier);
          w.u64(static_cast<std::uint64_t>(span.start_us));
          // Duration crosses the wire as nanoseconds to stay integral.
          w.u64(static_cast<std::uint64_t>(span.duration_ms * 1e6));
          w.u8(span.ok ? 1 : 0);
        }
        return w.take();
      });
}

Result<std::unique_ptr<RemoteTieraClient>> RemoteTieraClient::connect(
    const std::string& host, std::uint16_t port) {
  auto client = RpcClient::connect(host, port);
  if (!client.ok()) return client.status();
  return std::unique_ptr<RemoteTieraClient>(
      new RemoteTieraClient(std::move(client).value()));
}

Status RemoteTieraClient::put(std::string_view id, ByteView data,
                              const std::vector<std::string>& tags) {
  WireWriter w;
  w.str(id);
  w.bytes(data);
  write_string_list(w, tags);
  return client_
      ->call(static_cast<std::uint8_t>(TieraMethod::kPut), as_view(w.data()))
      .status();
}

Result<Bytes> RemoteTieraClient::get(std::string_view id) {
  WireWriter w;
  w.str(id);
  return client_->call(static_cast<std::uint8_t>(TieraMethod::kGet),
                       as_view(w.data()));
}

Status RemoteTieraClient::remove(std::string_view id) {
  WireWriter w;
  w.str(id);
  return client_
      ->call(static_cast<std::uint8_t>(TieraMethod::kRemove),
             as_view(w.data()))
      .status();
}

Result<RemoteObjectInfo> RemoteTieraClient::stat(std::string_view id) {
  WireWriter w;
  w.str(id);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kStat), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  RemoteObjectInfo info;
  std::uint8_t dirty = 0;
  TIERA_RETURN_IF_ERROR(r.str(info.id));
  TIERA_RETURN_IF_ERROR(r.u64(info.size));
  TIERA_RETURN_IF_ERROR(r.u64(info.access_count));
  TIERA_RETURN_IF_ERROR(r.u8(dirty));
  TIERA_RETURN_IF_ERROR(read_string_list(r, info.locations));
  TIERA_RETURN_IF_ERROR(read_string_list(r, info.tags));
  info.dirty = dirty != 0;
  return info;
}

Status RemoteTieraClient::add_tags(std::string_view id,
                                   const std::vector<std::string>& tags) {
  WireWriter w;
  w.str(id);
  write_string_list(w, tags);
  return client_
      ->call(static_cast<std::uint8_t>(TieraMethod::kAddTags),
             as_view(w.data()))
      .status();
}

Result<std::vector<std::string>> RemoteTieraClient::list_tiers() {
  Result<Bytes> reply =
      client_->call(static_cast<std::uint8_t>(TieraMethod::kListTiers), {});
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  std::vector<std::string> tiers;
  TIERA_RETURN_IF_ERROR(read_string_list(r, tiers));
  return tiers;
}

Result<std::string> RemoteTieraClient::stats(std::string_view format) {
  WireWriter w;
  w.str(format);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kStats), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  return std::string(reply->begin(), reply->end());
}

Result<RemoteStatsSummary> RemoteTieraClient::stats_summary() {
  Result<Bytes> reply =
      client_->call(static_cast<std::uint8_t>(TieraMethod::kStats), {});
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  RemoteStatsSummary s;
  TIERA_RETURN_IF_ERROR(r.u64(s.puts));
  TIERA_RETURN_IF_ERROR(r.u64(s.gets));
  TIERA_RETURN_IF_ERROR(r.u64(s.removes));
  TIERA_RETURN_IF_ERROR(r.u64(s.objects));
  return s;
}

Result<std::string> RemoteTieraClient::trace(std::uint32_t last_n) {
  WireWriter w;
  w.u32(last_n);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kTrace), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  return std::string(reply->begin(), reply->end());
}

Result<std::vector<RequestTracer::Span>> RemoteTieraClient::trace_spans(
    std::uint32_t last_n) {
  WireWriter w;
  w.u32(last_n);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kTraceSpans), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  std::uint32_t count = 0;
  TIERA_RETURN_IF_ERROR(r.u32(count));
  std::vector<RequestTracer::Span> spans;
  spans.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RequestTracer::Span span;
    std::uint64_t start_us = 0, duration_ns = 0;
    std::uint8_t op = 0, ok = 0;
    std::string name, object_id, tier;
    TIERA_RETURN_IF_ERROR(r.u64(span.seq));
    TIERA_RETURN_IF_ERROR(r.u64(span.trace_id));
    TIERA_RETURN_IF_ERROR(r.u64(span.span_id));
    TIERA_RETURN_IF_ERROR(r.u64(span.parent_span_id));
    TIERA_RETURN_IF_ERROR(r.u64(span.rule_id));
    TIERA_RETURN_IF_ERROR(r.u8(op));
    TIERA_RETURN_IF_ERROR(r.str(name));
    TIERA_RETURN_IF_ERROR(r.str(object_id));
    TIERA_RETURN_IF_ERROR(r.str(tier));
    TIERA_RETURN_IF_ERROR(r.u64(start_us));
    TIERA_RETURN_IF_ERROR(r.u64(duration_ns));
    TIERA_RETURN_IF_ERROR(r.u8(ok));
    span.op = static_cast<TraceOp>(op);
    std::snprintf(span.name, sizeof(span.name), "%s", name.c_str());
    std::snprintf(span.object_id, sizeof(span.object_id), "%s",
                  object_id.c_str());
    std::snprintf(span.tier, sizeof(span.tier), "%s", tier.c_str());
    span.start_us = static_cast<std::int64_t>(start_us);
    span.duration_ms = static_cast<double>(duration_ns) / 1e6;
    span.ok = ok != 0;
    spans.push_back(span);
  }
  return spans;
}

Result<std::vector<RemoteSloRow>> RemoteTieraClient::slo() {
  Result<Bytes> reply =
      client_->call(static_cast<std::uint8_t>(TieraMethod::kSlo), {});
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  std::uint32_t count = 0;
  TIERA_RETURN_IF_ERROR(r.u32(count));
  std::vector<RemoteSloRow> rows;
  rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RemoteSloRow row;
    std::uint8_t is_latency = 0, violated = 0;
    std::uint64_t target = 0, current = 0, window = 0, burn_short = 0,
                  burn_long = 0;
    TIERA_RETURN_IF_ERROR(r.str(row.name));
    TIERA_RETURN_IF_ERROR(r.str(row.tier));
    TIERA_RETURN_IF_ERROR(r.str(row.signal));
    TIERA_RETURN_IF_ERROR(r.u8(is_latency));
    TIERA_RETURN_IF_ERROR(r.u8(violated));
    TIERA_RETURN_IF_ERROR(r.u64(target));
    TIERA_RETURN_IF_ERROR(r.u64(current));
    TIERA_RETURN_IF_ERROR(r.u64(window));
    TIERA_RETURN_IF_ERROR(r.u64(row.samples));
    TIERA_RETURN_IF_ERROR(r.u64(burn_short));
    TIERA_RETURN_IF_ERROR(r.u64(burn_long));
    TIERA_RETURN_IF_ERROR(r.u64(row.violations));
    row.is_latency = is_latency != 0;
    row.violated = violated != 0;
    row.target = static_cast<double>(target) / 1e6;
    row.current = static_cast<double>(current) / 1e6;
    row.window_s = static_cast<double>(window) / 1e6;
    row.burn_short = static_cast<double>(burn_short) / 1e6;
    row.burn_long = static_cast<double>(burn_long) / 1e6;
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::string> RemoteTieraClient::profile(std::uint32_t duration_ms,
                                               std::uint32_t interval_us) {
  WireWriter w;
  w.u32(duration_ms);
  w.u32(interval_us);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kProfile), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  return std::string(reply->begin(), reply->end());
}

Result<RemoteHeatReport> RemoteTieraClient::heat(std::uint32_t top_n) {
  WireWriter w;
  w.u32(top_n);
  Result<Bytes> reply = client_->call(
      static_cast<std::uint8_t>(TieraMethod::kHeat), as_view(w.data()));
  if (!reply.ok()) return reply.status();
  WireReader r(as_view(*reply));
  RemoteHeatReport report;
  std::uint8_t enabled = 0;
  TIERA_RETURN_IF_ERROR(r.u8(enabled));
  report.enabled = enabled != 0;
  if (!report.enabled) return report;
  const auto from_micros = [](std::uint64_t v) {
    return static_cast<double>(v) / 1e6;
  };
  const auto from_nanos = [](std::uint64_t v) {
    return static_cast<double>(v) / 1e9;
  };
  std::uint64_t half_life = 0;
  TIERA_RETURN_IF_ERROR(r.u64(half_life));
  report.half_life_s = from_micros(half_life);
  TIERA_RETURN_IF_ERROR(r.u64(report.decay_epochs));
  TIERA_RETURN_IF_ERROR(r.u64(report.memory_bytes));
  std::uint32_t tier_count = 0;
  TIERA_RETURN_IF_ERROR(r.u32(tier_count));
  report.tiers.reserve(tier_count);
  for (std::uint32_t i = 0; i < tier_count; ++i) {
    RemoteTierHeat tier;
    TIERA_RETURN_IF_ERROR(r.str(tier.tier));
    std::uint32_t top_count = 0;
    TIERA_RETURN_IF_ERROR(r.u32(top_count));
    tier.top.reserve(top_count);
    for (std::uint32_t j = 0; j < top_count; ++j) {
      RemoteHeatEntry entry;
      std::uint64_t rate = 0;
      TIERA_RETURN_IF_ERROR(r.str(entry.key));
      TIERA_RETURN_IF_ERROR(r.u64(entry.estimate));
      TIERA_RETURN_IF_ERROR(r.u64(rate));
      entry.rate_per_s = from_micros(rate);
      tier.top.push_back(std::move(entry));
    }
    std::uint32_t bucket_count = 0;
    TIERA_RETURN_IF_ERROR(r.u32(bucket_count));
    tier.histogram.resize(bucket_count);
    for (std::uint32_t j = 0; j < bucket_count; ++j) {
      TIERA_RETURN_IF_ERROR(r.u64(tier.histogram[j]));
    }
    TIERA_RETURN_IF_ERROR(r.u64(tier.tracked_keys));
    TIERA_RETURN_IF_ERROR(r.u64(tier.records));
    TIERA_RETURN_IF_ERROR(r.u64(tier.bytes));
    TIERA_RETURN_IF_ERROR(r.u64(tier.evictions));
    report.tiers.push_back(std::move(tier));
  }
  std::uint64_t total = 0, burn = 0, modelled = 0;
  TIERA_RETURN_IF_ERROR(r.u64(total));
  TIERA_RETURN_IF_ERROR(r.u64(burn));
  TIERA_RETURN_IF_ERROR(r.u64(modelled));
  report.total_dollars = from_nanos(total);
  report.monthly_burn_dollars = from_nanos(burn);
  report.modelled_seconds = from_micros(modelled);
  std::uint32_t cost_count = 0;
  TIERA_RETURN_IF_ERROR(r.u32(cost_count));
  report.tier_costs.reserve(cost_count);
  for (std::uint32_t i = 0; i < cost_count; ++i) {
    RemoteTierCost tier;
    std::uint64_t storage = 0, request = 0, egress = 0, tier_burn = 0;
    TIERA_RETURN_IF_ERROR(r.str(tier.tier));
    TIERA_RETURN_IF_ERROR(r.u64(storage));
    TIERA_RETURN_IF_ERROR(r.u64(request));
    TIERA_RETURN_IF_ERROR(r.u64(egress));
    TIERA_RETURN_IF_ERROR(r.u64(tier_burn));
    TIERA_RETURN_IF_ERROR(r.u64(tier.read_bytes));
    TIERA_RETURN_IF_ERROR(r.u64(tier.write_bytes));
    tier.storage_dollars = from_nanos(storage);
    tier.request_dollars = from_nanos(request);
    tier.egress_dollars = from_nanos(egress);
    tier.monthly_burn_dollars = from_nanos(tier_burn);
    report.tier_costs.push_back(std::move(tier));
  }
  std::uint32_t rule_count = 0;
  TIERA_RETURN_IF_ERROR(r.u32(rule_count));
  report.rule_costs.reserve(rule_count);
  for (std::uint32_t i = 0; i < rule_count; ++i) {
    RemoteRuleCost rule;
    std::uint64_t dollars = 0;
    TIERA_RETURN_IF_ERROR(r.u64(rule.rule_id));
    TIERA_RETURN_IF_ERROR(r.str(rule.name));
    TIERA_RETURN_IF_ERROR(r.u64(rule.bytes));
    TIERA_RETURN_IF_ERROR(r.u64(rule.objects));
    TIERA_RETURN_IF_ERROR(r.u64(dollars));
    rule.dollars = from_nanos(dollars);
    report.rule_costs.push_back(std::move(rule));
  }
  return report;
}

Status RemoteTieraClient::grow_tier(std::string_view label, double percent) {
  WireWriter w;
  w.str(label);
  w.u64(static_cast<std::uint64_t>(percent * 1000.0));
  return client_
      ->call(static_cast<std::uint8_t>(TieraMethod::kGrowTier),
             as_view(w.data()))
      .status();
}

}  // namespace tiera
