#include "net/reactor.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "common/logging.h"
#include "common/profile_stack.h"
#include "net/tcp.h"
#include "net/wire.h"

namespace tiera {

namespace {

// epoll user-data tags. Connections use their id (>= kFirstConnId); the
// two small values identify the loop's eventfd and the listening socket.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

std::size_t default_parallelism() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace

// Per-connection state. Owned by exactly one loop and touched only on that
// loop's thread, so none of it is synchronized.
struct ReactorConn {
  int fd = -1;
  std::uint64_t id = 0;
  // Read side: accumulated bytes plus a consumed prefix; frames are decoded
  // in place and the buffer compacted once drained (or when the consumed
  // prefix grows large).
  Bytes rbuf;
  std::size_t rpos = 0;
  // Write side: fully framed responses awaiting the socket, plus the offset
  // into the front frame already written.
  std::deque<Bytes> wqueue;
  std::size_t woff = 0;
  // Requests decoded off this connection and not yet answered.
  std::uint32_t inflight = 0;
  bool reading = true;     // EPOLLIN subscribed
  bool want_write = false; // EPOLLOUT subscribed
  bool peer_eof = false;   // read side closed; reap once responses flush
};

class ReactorServer::Loop {
 public:
  Loop(ReactorServer& server, std::size_t index)
      : server_(server),
        index_(index),
        name_("rpc-loop-" + std::to_string(index)) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }

  ~Loop() {
    if (thread_.joinable()) thread_.join();
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epfd_ >= 0) ::close(epfd_);
  }

  // Called before the thread starts (loop 0 only).
  void adopt_listener(int listen_fd) {
    listen_fd_ = listen_fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, listen_fd, &ev);
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  // --- cross-thread mailbox -------------------------------------------

  void post_conn(int fd, std::uint64_t id) {
    post(Mail{Mail::kNewConn, id, fd, {}});
  }

  void post_response(std::uint64_t conn_id, Bytes frame) {
    post(Mail{Mail::kResponse, conn_id, -1, std::move(frame)});
  }

  void post_stop() { post(Mail{Mail::kStop, 0, -1, {}}); }

  // --- external telemetry (any thread) --------------------------------

  std::size_t connections() const { return conn_count_.load(); }
  std::size_t inflight() const { return inflight_snapshot_.load(); }
  std::uint64_t pauses() const { return pauses_.load(); }

 private:
  struct Mail {
    enum Kind { kNewConn, kResponse, kStop } kind;
    std::uint64_t conn_id;
    int fd;
    Bytes frame;
  };

  void post(Mail mail) {
    {
      std::lock_guard lock(mail_mu_);
      mailbox_.push_back(std::move(mail));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  void run() {
    profile_set_thread_name(name_.c_str());
    epoll_event events[64];
    while (running_) {
      const int n = ::epoll_wait(epfd_, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        TIERA_LOG(kError, "net")
            << name_ << " epoll_wait: " << std::strerror(errno);
        break;
      }
      for (int i = 0; i < n && running_; ++i) {
        const std::uint64_t tag = events[i].data.u64;
        if (tag == kWakeTag) {
          drain_wake();
          process_mailbox();
          continue;
        }
        if (tag == kListenTag) {
          accept_ready();
          continue;
        }
        auto it = conns_.find(tag);
        if (it == conns_.end()) continue;  // closed earlier this batch
        ReactorConn* conn = it->second.get();
        const std::uint32_t flags = events[i].events;
        if (flags & (EPOLLERR | EPOLLHUP)) {
          // Socket error or full close from the peer: any response we
          // could still produce is undeliverable. Reap immediately.
          destroy(conn);
          continue;
        }
        if (flags & EPOLLIN) {
          if (!handle_readable(conn)) continue;  // destroyed
        }
        if (flags & EPOLLOUT) {
          flush_writes(conn);
        }
      }
    }
    // Loop exit: close everything still tracked.
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    conns_.clear();
    conn_count_.store(0);
    publish_gauges();
  }

  void drain_wake() {
    std::uint64_t buf;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
  }

  void process_mailbox() {
    std::vector<Mail> batch;
    {
      std::lock_guard lock(mail_mu_);
      batch.swap(mailbox_);
    }
    for (Mail& mail : batch) {
      switch (mail.kind) {
        case Mail::kNewConn:
          adopt(mail.fd, mail.conn_id);
          break;
        case Mail::kResponse:
          complete(mail.conn_id, std::move(mail.frame));
          break;
        case Mail::kStop:
          running_ = false;
          break;
      }
    }
  }

  // --- accepting (only the loop that owns the listener) ----------------

  void accept_ready() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient error: wait for the next event
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const std::uint64_t seq = server_.next_conn_.fetch_add(1);
      const std::uint64_t id = kFirstConnId + seq;
      const std::size_t target = seq % server_.loops_.size();
      if (target == index_) {
        adopt(fd, id);
      } else {
        server_.loops_[target]->post_conn(fd, id);
      }
    }
  }

  void adopt(int fd, std::uint64_t id) {
    if (!running_) {
      ::close(fd);
      return;
    }
    auto conn = std::make_unique<ReactorConn>();
    conn->fd = fd;
    conn->id = id;
    conn->reading = !paused_;
    epoll_event ev{};
    ev.events = conn->reading ? std::uint32_t(EPOLLIN) : 0u;
    ev.data.u64 = id;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return;
    }
    conns_.emplace(id, std::move(conn));
    conn_count_.store(conns_.size());
    publish_gauges();
  }

  void destroy(ReactorConn* conn) {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    // Requests already dispatched keep counting against the loop's
    // in-flight cap until their responses come back (complete() drops the
    // count whether or not the connection still exists).
    conns_.erase(conn->id);
    conn_count_.store(conns_.size());
    publish_gauges();
  }

  void update_interest(ReactorConn* conn) {
    epoll_event ev{};
    ev.events = (conn->reading ? std::uint32_t(EPOLLIN) : 0u) |
                (conn->want_write ? std::uint32_t(EPOLLOUT) : 0u);
    ev.data.u64 = conn->id;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  // --- read path -------------------------------------------------------

  // Returns false if the connection was destroyed.
  bool handle_readable(ReactorConn* conn) {
    for (;;) {
      std::uint8_t buf[64 << 10];
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->rbuf.insert(conn->rbuf.end(), buf, buf + n);
        if (!decode_frames(conn)) {
          destroy(conn);
          return false;
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        if (!conn->reading) break;  // backpressure tripped mid-read
        continue;
      }
      if (n == 0) {
        // Half-close (or close): never read again, but responses for
        // requests already decoded still get written back. Unsubscribe
        // EPOLLIN so the level-triggered EOF does not spin the loop.
        conn->peer_eof = true;
        conn->reading = false;
        update_interest(conn);
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      destroy(conn);
      return false;
    }
    if (conn->peer_eof && conn->inflight == 0 && conn->wqueue.empty()) {
      destroy(conn);
      return false;
    }
    return true;
  }

  // Peels complete frames off conn->rbuf. Returns false on a protocol
  // violation (oversized frame) — the caller destroys the connection.
  bool decode_frames(ReactorConn* conn) {
    for (;;) {
      // Admission is gated by the in-flight cap, not just socket reads: a
      // burst of pipelined requests lands in one read(), and dispatching
      // everything buffered would blow straight through the cap. Leftover
      // frames sit in rbuf until maybe_resume() re-decodes them.
      if (paused_) break;
      const std::size_t avail = conn->rbuf.size() - conn->rpos;
      if (avail < 4) break;
      std::uint32_t len;
      std::memcpy(&len, conn->rbuf.data() + conn->rpos, 4);
      if (len > TcpConnection::kMaxFrame) return false;
      if (avail < 4 + static_cast<std::size_t>(len)) break;
      on_frame(conn, ByteView(conn->rbuf.data() + conn->rpos + 4, len));
      conn->rpos += 4 + static_cast<std::size_t>(len);
    }
    // Compact: cheap when fully drained, amortized otherwise.
    if (conn->rpos == conn->rbuf.size()) {
      conn->rbuf.clear();
      conn->rpos = 0;
    } else if (conn->rpos > (256 << 10)) {
      conn->rbuf.erase(conn->rbuf.begin(),
                       conn->rbuf.begin() + static_cast<long>(conn->rpos));
      conn->rpos = 0;
    }
    return true;
  }

  void on_frame(ReactorConn* conn, ByteView frame) {
    if (frame.size() < 8 + 1) {
      server_.metrics_.errors->inc();
      return;  // malformed frame: drop it, keep the connection
    }
    Request request;
    request.loop = index_;
    request.conn_id = conn->id;
    std::memcpy(&request.request_id, frame.data(), 8);
    const std::uint8_t raw_method = frame[8];
    request.method = raw_method & kRpcMethodMask;
    std::size_t body_off = 9;
    std::string_view tenant;
    if (raw_method & kRpcTenantFlag) {
      // Tenant header: one wire string spliced in front of the body. Parsed
      // and stripped here so handlers and the shard-key extractor see the
      // exact pre-header body layout. A malformed header still gets an
      // answer — a blocking caller must never hang on a dropped frame.
      if (frame.size() < body_off + 4) {
        server_.metrics_.errors->inc();
        reject(conn, request.request_id,
               Status::InvalidArgument("truncated tenant header"));
        return;
      }
      std::uint32_t tenant_len = 0;
      std::memcpy(&tenant_len, frame.data() + body_off, 4);
      if (frame.size() - body_off - 4 < tenant_len) {
        server_.metrics_.errors->inc();
        reject(conn, request.request_id,
               Status::InvalidArgument("truncated tenant header"));
        return;
      }
      tenant = std::string_view(
          reinterpret_cast<const char*>(frame.data()) + body_off + 4,
          tenant_len);
      body_off += 4 + static_cast<std::size_t>(tenant_len);
    }
    if (server_.admission_) {
      const Status verdict = server_.admission_(
          request.method, tenant, (raw_method & kRpcBackgroundFlag) != 0);
      if (!verdict.ok()) {
        reject(conn, request.request_id, verdict);
        return;  // fast-fail: never dispatched, never counted in-flight
      }
    }
    request.body.assign(frame.begin() + static_cast<long>(body_off),
                        frame.end());
    ++conn->inflight;
    ++inflight_;
    inflight_snapshot_.store(inflight_);
    publish_gauges();
    maybe_pause();
    server_.dispatch(std::move(request));
  }

  // Answers a shed request from the loop thread. The frame is queued and
  // EPOLLOUT-subscribed rather than written inline: flush_writes() can
  // destroy the connection, and our caller (decode_frames) still holds the
  // pointer. The deferred flush happens on the next epoll iteration.
  void reject(ReactorConn* conn, std::uint64_t request_id,
              const Status& verdict) {
    WireWriter response;
    response.u64(request_id);
    response.u8(static_cast<std::uint8_t>(verdict.code()));
    response.str(verdict.message());
    response.bytes({});
    const Bytes& payload = response.data();
    Bytes frame;
    frame.reserve(4 + payload.size());
    const auto len = static_cast<std::uint32_t>(payload.size());
    frame.insert(frame.end(), reinterpret_cast<const std::uint8_t*>(&len),
                 reinterpret_cast<const std::uint8_t*>(&len) + 4);
    frame.insert(frame.end(), payload.begin(), payload.end());
    conn->wqueue.push_back(std::move(frame));
    if (!conn->want_write) {
      conn->want_write = true;
      update_interest(conn);
    }
  }

  // --- write path ------------------------------------------------------

  void complete(std::uint64_t conn_id, Bytes frame) {
    if (inflight_ > 0) {
      --inflight_;
      inflight_snapshot_.store(inflight_);
      publish_gauges();
      maybe_resume();
    }
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // connection died mid-request
    ReactorConn* conn = it->second.get();
    if (conn->inflight > 0) --conn->inflight;
    conn->wqueue.push_back(std::move(frame));
    flush_writes(conn);
  }

  // Returns false if the connection was destroyed.
  bool flush_writes(ReactorConn* conn) {
    while (!conn->wqueue.empty()) {
      const Bytes& front = conn->wqueue.front();
      const ssize_t n = ::write(conn->fd, front.data() + conn->woff,
                                front.size() - conn->woff);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn->want_write) {
            conn->want_write = true;
            update_interest(conn);
          }
          return true;  // slow reader: EPOLLOUT resumes us
        }
        destroy(conn);
        return false;
      }
      conn->woff += static_cast<std::size_t>(n);
      if (conn->woff == front.size()) {
        conn->wqueue.pop_front();
        conn->woff = 0;
      }
    }
    if (conn->want_write) {
      conn->want_write = false;
      update_interest(conn);
    }
    if (conn->peer_eof && conn->inflight == 0) {
      destroy(conn);
      return false;
    }
    return true;
  }

  // --- backpressure ----------------------------------------------------

  void maybe_pause() {
    if (paused_ || inflight_ < server_.options_.max_inflight_per_loop) return;
    paused_ = true;
    pauses_.fetch_add(1);
    server_.metrics_.backpressure_pauses->inc();
    for (auto& [id, conn] : conns_) {
      if (conn->reading) {
        conn->reading = false;
        update_interest(conn.get());
      }
    }
  }

  void maybe_resume() {
    if (!paused_ || inflight_ > server_.options_.max_inflight_per_loop / 2) {
      return;
    }
    paused_ = false;
    // Admit frames that were buffered while paused before re-subscribing:
    // those bytes are already off the socket, so no EPOLLIN will ever fire
    // for them. Decoding can re-trip the pause, which stops admission again
    // mid-sweep; connections skipped this round stay unsubscribed.
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      ReactorConn* conn = it->second.get();
      if (!decode_frames(conn)) {
        destroy(conn);
        continue;
      }
      if (conn->peer_eof && conn->inflight == 0 && conn->wqueue.empty()) {
        destroy(conn);
        continue;
      }
      if (!paused_ && !conn->reading && !conn->peer_eof) {
        conn->reading = true;
        update_interest(conn);
      }
    }
  }

  void publish_gauges() {
    server_.metrics_.connections->set(
        static_cast<double>(server_.tracked_connections()));
    server_.metrics_.inflight->set(static_cast<double>(server_.inflight()));
  }

  ReactorServer& server_;
  const std::size_t index_;
  const std::string name_;  // stable storage for profile_set_thread_name

  int epfd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;  // only set on the accepting loop
  std::thread thread_;
  bool running_ = true;  // loop-thread only (mailbox kStop flips it)

  std::mutex mail_mu_;
  std::vector<Mail> mailbox_;

  // Loop-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<ReactorConn>> conns_;
  std::size_t inflight_ = 0;
  bool paused_ = false;

  // Snapshots for cross-thread accessors.
  std::atomic<std::size_t> conn_count_{0};
  std::atomic<std::size_t> inflight_snapshot_{0};
  std::atomic<std::uint64_t> pauses_{0};
};

ReactorServer::ReactorServer(std::uint16_t port, ReactorOptions options)
    : requested_port_(port), options_(options) {
  MetricsRegistry& reg = MetricsRegistry::global();
  metrics_.requests = &reg.counter("tiera_rpc_requests_total");
  metrics_.errors = &reg.counter("tiera_rpc_errors_total");
  metrics_.backpressure_pauses =
      &reg.counter("tiera_rpc_backpressure_pauses_total");
  metrics_.connections = &reg.gauge("tiera_rpc_connections");
  metrics_.inflight = &reg.gauge("tiera_rpc_inflight");
  metrics_.request_latency = &reg.histogram("tiera_rpc_request_latency_ms");
}

ReactorServer::~ReactorServer() { stop(); }

void ReactorServer::register_handler(std::uint8_t method, RpcHandler handler) {
  handlers_[method] = std::move(handler);
}

void ReactorServer::set_shard_key(ShardKeyFn fn) { shard_key_ = std::move(fn); }

void ReactorServer::set_admission(AdmissionFn fn) {
  admission_ = std::move(fn);
}

Status ReactorServer::start() {
  if (running_.load()) return Status::Ok();

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(requested_port_);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 256) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  bound_port_ = ntohs(bound.sin_port);

  const std::size_t loops =
      options_.loops != 0 ? options_.loops : default_parallelism();
  const std::size_t shards =
      options_.shards != 0 ? options_.shards : default_parallelism();

  shards_.reserve(shards);
  shard_metrics_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Single-threaded by design: one shard == one core's FIFO of requests
    // for its slice of the object-id space.
    shards_.push_back(
        std::make_unique<ThreadPool>(1, "rpc-shard-" + std::to_string(i)));
    shard_metrics_.push_back(std::make_unique<PoolMetrics>(*shards_.back()));
  }
  admin_pool_ = std::make_unique<ThreadPool>(2, "rpc-admin");

  loops_.reserve(loops);
  for (std::size_t i = 0; i < loops; ++i) {
    loops_.push_back(std::make_unique<Loop>(*this, i));
  }
  loops_[0]->adopt_listener(listen_fd_);
  running_.store(true);
  for (auto& loop : loops_) loop->start();
  TIERA_LOG(kInfo, "net") << "rpc server listening on port " << bound_port_
                          << " (" << loops << " loops, " << shards
                          << " shards)";
  return Status::Ok();
}

void ReactorServer::stop() {
  if (!running_.exchange(false)) return;
  // Drain the execution pools first: every already-dispatched request runs
  // to completion and its response mail reaches a still-live loop, so
  // in-flight callers get answers instead of connection resets.
  for (auto& shard : shards_) shard->shutdown();
  if (admin_pool_) admin_pool_->shutdown();
  for (auto& loop : loops_) loop->post_stop();
  // Join every loop before destroying any: a still-running loop publishes
  // gauges by summing across loops_, so the vector must stay intact until
  // all loop threads have exited.
  for (auto& loop : loops_) loop->join();
  loops_.clear();
  shard_metrics_.clear();
  shards_.clear();
  admin_pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::uint16_t ReactorServer::port() const {
  return bound_port_ != 0 ? bound_port_ : requested_port_;
}

std::size_t ReactorServer::tracked_connections() const {
  std::size_t total = 0;
  for (const auto& loop : loops_) total += loop->connections();
  return total;
}

std::size_t ReactorServer::inflight() const {
  std::size_t total = 0;
  for (const auto& loop : loops_) total += loop->inflight();
  return total;
}

std::size_t ReactorServer::inflight_capacity() const {
  const std::size_t loops = loops_.empty() ? 1 : loops_.size();
  return loops * options_.max_inflight_per_loop;
}

std::uint64_t ReactorServer::backpressure_pauses() const {
  std::uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->pauses();
  return total;
}

void ReactorServer::dispatch(Request request) {
  const std::uint64_t key = shard_key_
                                ? shard_key_(request.method, as_view(request.body))
                                : request.conn_id;
  ThreadPool* pool = (key == kAdminKey && admin_pool_)
                         ? admin_pool_.get()
                         : shards_[key % shards_.size()].get();
  auto shared = std::make_shared<Request>(std::move(request));
  if (!pool->submit([this, shared] { execute(*shared); })) {
    // Pool is shutting down: the server is stopping and the loops will
    // close this connection anyway. The in-flight count dies with them.
  }
}

void ReactorServer::execute(const Request& request) {
  Stopwatch watch;
  WireWriter response;
  response.u64(request.request_id);
  auto it = handlers_.find(request.method);
  if (it == handlers_.end()) {
    response.u8(static_cast<std::uint8_t>(StatusCode::kInvalidArgument));
    response.str("unknown method");
    response.bytes({});
    metrics_.errors->inc();
  } else {
    Result<Bytes> result = it->second(as_view(request.body));
    if (result.ok()) {
      response.u8(static_cast<std::uint8_t>(StatusCode::kOk));
      response.str("");
      response.bytes(as_view(*result));
    } else {
      response.u8(static_cast<std::uint8_t>(result.status().code()));
      response.str(result.status().message());
      response.bytes({});
      metrics_.errors->inc();
    }
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  metrics_.requests->inc();
  metrics_.request_latency->record(watch.elapsed());

  const Bytes& payload = response.data();
  Bytes frame;
  frame.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.insert(frame.end(), reinterpret_cast<const std::uint8_t*>(&len),
               reinterpret_cast<const std::uint8_t*>(&len) + 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  loops_[request.loop]->post_response(request.conn_id, std::move(frame));
}

}  // namespace tiera
