// Binary wire format for the RPC layer (Thrift's role in the prototype).
// Little-endian fixed-width integers and length-prefixed byte strings.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace tiera {

class WireWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buffer_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buffer_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(buffer_, s);
  }
  void bytes(ByteView b) {
    u32(static_cast<std::uint32_t>(b.size()));
    append(buffer_, b);
  }

  const Bytes& data() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

class WireReader {
 public:
  explicit WireReader(ByteView data) : p_(data.data()), end_(p_ + data.size()) {}

  Status u8(std::uint8_t& v) {
    if (end_ - p_ < 1) return truncated();
    v = *p_++;
    return Status::Ok();
  }
  Status u32(std::uint32_t& v) {
    if (end_ - p_ < 4) return truncated();
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p_[i]) << (8 * i);
    p_ += 4;
    return Status::Ok();
  }
  Status u64(std::uint64_t& v) {
    if (end_ - p_ < 8) return truncated();
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p_[i]) << (8 * i);
    p_ += 8;
    return Status::Ok();
  }
  Status str(std::string& s) {
    std::uint32_t n;
    TIERA_RETURN_IF_ERROR(u32(n));
    if (end_ - p_ < n) return truncated();
    s.assign(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return Status::Ok();
  }
  Status bytes(Bytes& b) {
    std::uint32_t n;
    TIERA_RETURN_IF_ERROR(u32(n));
    if (end_ - p_ < n) return truncated();
    b.assign(p_, p_ + n);
    p_ += n;
    return Status::Ok();
  }

  bool at_end() const { return p_ == end_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  static Status truncated() {
    return Status::Corruption("wire: truncated message");
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace tiera
